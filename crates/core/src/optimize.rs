//! Optimized input signal probabilities (paper Sec. 6).
//!
//! For a tuple `X = (p_i)` of input probabilities, `J_N(X) = Π_f
//! (1 − (1 − p_f(X))^N)` estimates the probability that `N` weighted random
//! patterns detect every fault. `J_N` is maximized "according to the hill
//! climbing principle" over a discrete grid — Table 4's optimized values
//! (0.13, 0.31, 0.38, 0.56, 0.63, 0.69, 0.75, 0.88, 0.94) are all `k/16`,
//! so the grid denominator defaults to 16.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::analyzer::Analyzer;
use crate::cancel::CancelToken;
use crate::error::CoreError;
use crate::params::InputProbs;
use crate::session::{AnalysisSession, SessionStats};
use crate::testlen::{ln_expected_undetected, ln_set_detection_probability};

/// Hill-climbing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeParams {
    /// The numerical parameter `N` of the objective `J_N` (the paper calls
    /// it "only a numerical parameter"; thousands work well).
    pub n_target: u64,
    /// Grid denominator: probabilities move on `{1/g, …, (g−1)/g}`.
    pub grid: u32,
    /// Maximum full rounds over all inputs.
    pub max_rounds: usize,
    /// Seed for the per-round input visiting order.
    pub seed: u64,
}

impl Default for OptimizeParams {
    fn default() -> Self {
        OptimizeParams {
            n_target: 2000,
            grid: 16,
            max_rounds: 16,
            seed: 0,
        }
    }
}

/// Result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimizationResult {
    /// The optimized input probabilities.
    pub probs: InputProbs,
    /// Grid numerators (`probs[i] = grid_ks[i] / grid`).
    pub grid_ks: Vec<u32>,
    /// Climbing objective (`−ln E[#undetected]`) at the optimum.
    pub objective_ln: f64,
    /// Climbing objective at the starting point.
    pub initial_objective_ln: f64,
    /// Rounds performed.
    pub rounds: usize,
    /// Number of objective evaluations (analysis runs).
    pub evaluations: usize,
    /// Work counters of *this* climb: the driving session's work from the
    /// climb's start to its optimum, plus the net work of any cloned
    /// trial-move worker sessions a parallel executor used (for
    /// [`HillClimber::optimize_multi`] each round therefore reports its
    /// own work). The observable record of how much incremental reuse the
    /// forward, reverse and per-fault passes achieved. Totals grow
    /// somewhat with the thread count: each worker clone re-propagates
    /// accepted moves to catch up to the climb's current point, work the
    /// serial schedule performs only once on the driving session.
    pub session_stats: SessionStats,
}

/// Result of [`HillClimber::optimize_multi`]: one distribution per round
/// plus, for each fault, the round that claimed it.
#[derive(Debug, Clone)]
pub struct MultiDistributionResult {
    /// The optimized distributions, in the order they were produced.
    pub distributions: Vec<OptimizationResult>,
    /// For each fault (aligned with [`crate::Analyzer::faults`]), the index
    /// of the distribution whose pattern budget covers it, or `None` if no
    /// round reached the confidence target.
    pub covered_by: Vec<Option<usize>>,
}

impl MultiDistributionResult {
    /// Number of faults left uncovered by every distribution.
    pub fn uncovered(&self) -> usize {
        self.covered_by.iter().filter(|c| c.is_none()).count()
    }
}

/// Hill climber over the input-probability grid.
///
/// # Example
///
/// ```
/// use protest_core::{Analyzer, optimize::{HillClimber, OptimizeParams}};
/// use protest_netlist::CircuitBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::new("deep_and");
/// let xs = b.input_bus("x", 6);
/// let t = b.and_tree(&xs);
/// b.output(t, "z");
/// let ckt = b.finish()?;
/// let analyzer = Analyzer::new(&ckt);
/// let result = HillClimber::new(&analyzer, OptimizeParams::default()).optimize()?;
/// // An AND tree wants high input probabilities.
/// assert!(result.probs.as_slice().iter().all(|&p| p > 0.5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HillClimber<'a, 'c> {
    analyzer: &'a Analyzer<'c>,
    params: OptimizeParams,
    cancel: CancelToken,
}

impl<'a, 'c> HillClimber<'a, 'c> {
    /// Creates a climber for an analyzer.
    ///
    /// # Panics
    ///
    /// Panics if `params.grid < 2` or `params.n_target == 0`.
    pub fn new(analyzer: &'a Analyzer<'c>, params: OptimizeParams) -> Self {
        assert!(params.grid >= 2, "grid must have at least two cells");
        assert!(params.n_target > 0, "objective needs N ≥ 1");
        HillClimber {
            analyzer,
            params,
            cancel: CancelToken::never(),
        }
    }

    /// Arms the climber with a [`CancelToken`]: every trial move, accepted
    /// move and objective evaluation (including the cloned trial-move
    /// worker sessions of a parallel executor) polls the token, and a
    /// fired token aborts the climb with [`CoreError::Cancelled`].
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Optimizes starting from the uniform point (`k = grid/2`).
    ///
    /// # Errors
    ///
    /// Propagates analysis errors ([`CoreError`]).
    pub fn optimize(&self) -> Result<OptimizationResult, CoreError> {
        let n = self.analyzer.circuit().num_inputs();
        let ks = vec![self.params.grid / 2; n];
        self.optimize_from_grid(ks)
    }

    /// Optimizes from explicit grid numerators.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors ([`CoreError`]).
    ///
    /// # Panics
    ///
    /// Panics if `start.len()` does not match the circuit's input count or
    /// any numerator is outside `1..grid`.
    pub fn optimize_from_grid(&self, start: Vec<u32>) -> Result<OptimizationResult, CoreError> {
        self.optimize_masked(start, None)
    }

    /// Optimizes multiple weighted-random distributions greedily — the
    /// extension the paper's single-tuple formulation motivates (and which
    /// Wunderlich pursued in follow-up work): circuits like array dividers
    /// contain fault classes that *no single* product distribution can
    /// excite simultaneously. Round `k` optimizes a distribution for the
    /// faults not yet considered covered, then marks every fault whose
    /// estimated detection probability within `patterns_per_distribution`
    /// patterns reaches `confidence`.
    ///
    /// Stops after `max_distributions`, or earlier when everything is
    /// covered or a round makes no progress.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors ([`CoreError`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_distributions == 0`, `patterns_per_distribution == 0`
    /// or `confidence` is not in `(0, 1)`.
    pub fn optimize_multi(
        &self,
        max_distributions: usize,
        patterns_per_distribution: u64,
        confidence: f64,
    ) -> Result<MultiDistributionResult, CoreError> {
        assert!(max_distributions > 0, "need at least one distribution");
        assert!(
            patterns_per_distribution > 0,
            "need a positive pattern budget"
        );
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1)"
        );
        let inputs = self.analyzer.circuit().num_inputs();
        let nfaults = self.analyzer.faults().len();
        let mut covered = vec![false; nfaults];
        let mut covered_by = vec![None; nfaults];
        let mut distributions = Vec::new();
        // One incremental session serves every round: each `climb` resets
        // the inputs to the uniform start (re-propagating only what that
        // changes) and leaves the session at the round's optimum, where the
        // detection probabilities are read back directly.
        let start = vec![self.params.grid / 2; inputs];
        let mut session = self.analyzer.session_with_cancel(
            &InputProbs::from_grid(&start, self.params.grid)?,
            self.cancel.clone(),
        )?;
        for round in 0..max_distributions {
            if covered.iter().all(|&c| c) {
                break;
            }
            let mask: Vec<bool> = covered.iter().map(|&c| !c).collect();
            let result = self.climb(&mut session, start.clone(), Some(&mask))?;
            let ps = session.try_fault_detect_probs()?;
            let mut newly = 0usize;
            for (i, &p) in ps.iter().enumerate() {
                if covered[i] || p <= 0.0 {
                    continue;
                }
                let miss = (patterns_per_distribution as f64) * (-p).ln_1p();
                if 1.0 - miss.exp() >= confidence {
                    covered[i] = true;
                    covered_by[i] = Some(round);
                    newly += 1;
                }
            }
            distributions.push(result);
            if newly == 0 {
                break; // no progress: further rounds would repeat
            }
        }
        Ok(MultiDistributionResult {
            distributions,
            covered_by,
        })
    }

    /// Optimizes a distribution for a *subset* of the analyzer's faults
    /// (`active[i]` selects fault `i` of [`crate::Analyzer::faults`]).
    ///
    /// Building block for coverage-feedback loops: callers can fault-
    /// simulate each produced distribution and re-optimize for whatever
    /// remains genuinely uncovered, sidestepping estimator optimism.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors ([`CoreError`]).
    ///
    /// # Panics
    ///
    /// Panics if `active.len()` does not match the fault count or no fault
    /// is active.
    pub fn optimize_for_faults(&self, active: &[bool]) -> Result<OptimizationResult, CoreError> {
        assert_eq!(
            active.len(),
            self.analyzer.faults().len(),
            "one flag per fault"
        );
        assert!(
            active.iter().any(|&a| a),
            "at least one fault must be active"
        );
        let start = vec![self.params.grid / 2; self.analyzer.circuit().num_inputs()];
        self.optimize_masked(start, Some(active))
    }

    fn optimize_masked(
        &self,
        start: Vec<u32>,
        mask: Option<&[bool]>,
    ) -> Result<OptimizationResult, CoreError> {
        let g = self.params.grid;
        assert!(
            start.iter().all(|&k| k >= 1 && k < g),
            "grid numerators must be in 1..grid"
        );
        let mut session = self
            .analyzer
            .session_with_cancel(&InputProbs::from_grid(&start, g)?, self.cancel.clone())?;
        self.climb(&mut session, start, mask)
    }

    /// The single climbing loop shared by all four `optimize*` entry
    /// points, driven by an incremental [`AnalysisSession`]: each trial
    /// move mutates one input (or shifts all of them), and every analysis
    /// layer the objective reads refreshes from the session's shared
    /// dirty-region tracker — the forward pass re-propagates only the
    /// dirty fan-out cone, the reverse pass re-sweeps only the dirty
    /// observability region, and the fault pass recomputes only the
    /// intersected faults. Rejected moves are undone with
    /// `snapshot`/`revert` instead of a from-scratch re-run. The session is
    /// left positioned at the returned optimum.
    ///
    /// On a parallel executor the two ±1 trial moves of each input are
    /// evaluated concurrently on cloned worker sessions synced to the
    /// climb's current point (sessions are confluent: any mutation route
    /// to the same input vector yields bit-identical state, so each trial
    /// objective equals the value the serial dance produces and the climb
    /// trajectory — every accepted move, every count — is unchanged).
    fn climb(
        &self,
        session: &mut AnalysisSession<'_, '_>,
        start: Vec<u32>,
        mask: Option<&[bool]>,
    ) -> Result<OptimizationResult, CoreError> {
        let _t = protest_telemetry::span(protest_telemetry::Site::OptimizeClimb);
        let inputs = self.analyzer.circuit().num_inputs();
        assert_eq!(start.len(), inputs, "one grid cell per input");
        let g = self.params.grid;
        let climb_base = session.stats();
        let mut ks = start;
        session.set_all(InputProbs::from_grid(&ks, g)?.as_slice())?;
        let mut evaluations = 0usize;
        let mut ps_buf: Vec<f64> = Vec::new();
        evaluations += 1;
        let mut best = self.objective_value(session, mask, &mut ps_buf)?;
        let initial = best;
        let exec = self.analyzer.exec();
        // Trial-move workers, cloned lazily on the first parallel trial.
        // `worker_base` snapshots the driving session's counters at clone
        // time so each worker's *net* work can be folded into the result.
        let mut workers: Vec<(AnalysisSession<'_, '_>, Vec<f64>)> = Vec::new();
        let mut worker_base = SessionStats::default();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut order: Vec<usize> = (0..inputs).collect();
        let mut rounds = 0usize;
        for _ in 0..self.params.max_rounds {
            self.cancel.check()?;
            rounds += 1;
            order.shuffle(&mut rng);
            let mut improved = false;
            for &i in &order {
                let k0 = ks[i];
                let cands: Vec<u32> = [k0.wrapping_sub(1), k0 + 1]
                    .into_iter()
                    .filter(|&c| (1..g).contains(&c))
                    .collect();
                let mut trials: Vec<(u32, f64)> = Vec::with_capacity(cands.len());
                if exec.parallel() && cands.len() == 2 {
                    if workers.is_empty() {
                        worker_base = session.stats();
                        workers.push((session.clone(), Vec::new()));
                        workers.push((session.clone(), Vec::new()));
                    }
                    let base = session.input_probs().to_vec();
                    let (w0, w1) = workers.split_at_mut(1);
                    let eval = |worker: &mut (AnalysisSession<'_, '_>, Vec<f64>),
                                cand: u32|
                     -> Result<f64, CoreError> {
                        let (worker_session, ps) = worker;
                        // Catch the worker up to the climb's current point
                        // first — it then re-propagates only the moves
                        // accepted since its last trial (usually one
                        // cone), and the snapshot/revert pair keeps each
                        // trial itself O(trial cone).
                        worker_session.set_all(&base)?;
                        worker_session.snapshot();
                        let mut target = base.clone();
                        target[i] = f64::from(cand) / f64::from(g);
                        worker_session.set_all(&target)?;
                        let objective = self.objective_value(worker_session, mask, ps)?;
                        worker_session.revert();
                        Ok(objective)
                    };
                    let (j0, j1) = exec.run(|| {
                        rayon::join(|| eval(&mut w0[0], cands[0]), || eval(&mut w1[0], cands[1]))
                    });
                    evaluations += 2;
                    trials.push((cands[0], j0?));
                    trials.push((cands[1], j1?));
                } else {
                    for &cand in &cands {
                        session.snapshot();
                        session.set_input_prob(i, f64::from(cand) / f64::from(g))?;
                        evaluations += 1;
                        let j = self.objective_value(session, mask, &mut ps_buf)?;
                        session.revert();
                        trials.push((cand, j));
                    }
                }
                let mut best_move: Option<(f64, u32)> = None;
                for &(cand, j) in &trials {
                    if j > best + 1e-12 && best_move.is_none_or(|(bj, _)| j > bj) {
                        best_move = Some((j, cand));
                    }
                }
                if let Some((j, k)) = best_move {
                    ks[i] = k;
                    session.snapshot();
                    session.set_input_prob(i, f64::from(k) / f64::from(g))?;
                    best = j;
                    improved = true;
                }
            }
            // Global ±1 shifts: coordinate moves cannot follow the diagonal
            // ridge created by faults whose detection trades one input's
            // activation against every other input's propagation (e.g. a
            // wide AND: raising a single p_i hurts that input's sa1 fault,
            // while raising all of them helps every fault).
            for delta in [-1i64, 1] {
                loop {
                    let cand: Vec<u32> = ks
                        .iter()
                        .map(|&k| (k as i64 + delta).clamp(1, g as i64 - 1) as u32)
                        .collect();
                    if cand == ks {
                        break;
                    }
                    session.snapshot();
                    session.set_all(InputProbs::from_grid(&cand, g)?.as_slice())?;
                    evaluations += 1;
                    let j = self.objective_value(session, mask, &mut ps_buf)?;
                    if j > best + 1e-12 {
                        ks = cand;
                        best = j;
                        improved = true;
                    } else {
                        session.revert();
                        break;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        let probs = InputProbs::from_grid(&ks, g)?;
        let mut session_stats = session.stats().since(&climb_base);
        for (worker, _) in &workers {
            session_stats = session_stats.plus(&worker.stats().since(&worker_base));
        }
        Ok(OptimizationResult {
            probs,
            grid_ks: ks,
            objective_ln: best,
            initial_objective_ln: initial,
            rounds,
            evaluations,
            session_stats,
        })
    }

    /// The climbing objective at the session's current point:
    /// `−ln E[#undetected]` (see [`ln_expected_undetected`]), which is
    /// monotone-aligned with `J_N` but keeps a usable gradient after
    /// `ln J_N` saturates to 0 in `f64`. Detection probabilities are
    /// floored at 1e−12 so estimated-undetectable faults stay comparable
    /// instead of poisoning the sum.
    fn objective_value(
        &self,
        session: &mut AnalysisSession<'_, '_>,
        mask: Option<&[bool]>,
        ps_buf: &mut Vec<f64>,
    ) -> Result<f64, CoreError> {
        ps_buf.clear();
        ps_buf.extend(
            session
                .try_fault_detect_probs()?
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask.is_none_or(|m| m[i]))
                .map(|(_, &p)| p.max(1e-12)),
        );
        Ok(-ln_expected_undetected(ps_buf, self.params.n_target))
    }

    /// `ln J_N` at a grid point (the paper's reported objective; not used
    /// for climbing because of its `f64` saturation).
    pub fn ln_j(&self, probs: &InputProbs) -> Result<f64, CoreError> {
        let analysis = self.analyzer.run(probs)?;
        let ps: Vec<f64> = analysis
            .detection_probabilities()
            .into_iter()
            .map(|p| p.max(1e-12))
            .collect();
        Ok(ln_set_detection_probability(&ps, self.params.n_target))
    }
}

#[cfg(test)]
mod tests {
    use protest_netlist::CircuitBuilder;

    use crate::analyzer::Analyzer;
    use crate::testlen::required_test_length;

    use super::*;

    #[test]
    fn and_tree_pushes_probabilities_up() {
        let mut b = CircuitBuilder::new("deep");
        let xs = b.input_bus("x", 8);
        let t = b.and_tree(&xs);
        b.output(t, "z");
        let ckt = b.finish().unwrap();
        let analyzer = Analyzer::new(&ckt);
        let hc = HillClimber::new(&analyzer, OptimizeParams::default());
        let res = hc.optimize().unwrap();
        assert!(res.objective_ln >= res.initial_objective_ln);
        // sa0 at the root needs all-ones patterns: optimal probabilities are
        // clearly above 1/2 (they trade off against sa1 activations).
        let mean: f64 = res.probs.as_slice().iter().sum::<f64>() / res.probs.len() as f64;
        assert!(mean > 0.6, "mean optimized probability {mean}");
    }

    #[test]
    fn nor_tree_pushes_probabilities_down() {
        let mut b = CircuitBuilder::new("nor");
        let xs = b.input_bus("x", 8);
        let t = b.or_tree(&xs); // root sa1 needs all-zero inputs
        b.output(t, "z");
        let ckt = b.finish().unwrap();
        let analyzer = Analyzer::new(&ckt);
        let hc = HillClimber::new(&analyzer, OptimizeParams::default());
        let res = hc.optimize().unwrap();
        let mean: f64 = res.probs.as_slice().iter().sum::<f64>() / res.probs.len() as f64;
        assert!(mean < 0.4, "mean optimized probability {mean}");
    }

    #[test]
    fn optimization_reduces_required_test_length() {
        // The headline claim of the paper (Table 3 → Table 5): optimized
        // weights shrink N by orders of magnitude on skewed circuits.
        let mut b = CircuitBuilder::new("skewed");
        let xs = b.input_bus("x", 12);
        let t = b.and_tree(&xs);
        b.output(t, "z");
        let ckt = b.finish().unwrap();
        let analyzer = Analyzer::new(&ckt);
        let uniform = analyzer.run(&InputProbs::uniform(12)).unwrap();
        let n_uniform = required_test_length(
            &uniform
                .detection_probabilities()
                .iter()
                .map(|p| p.max(1e-12))
                .collect::<Vec<_>>(),
            0.95,
        )
        .unwrap()
        .patterns;
        let res = HillClimber::new(&analyzer, OptimizeParams::default())
            .optimize()
            .unwrap();
        let optimized = analyzer.run(&res.probs).unwrap();
        let n_opt = required_test_length(
            &optimized
                .detection_probabilities()
                .iter()
                .map(|p| p.max(1e-12))
                .collect::<Vec<_>>(),
            0.95,
        )
        .unwrap()
        .patterns;
        assert!(
            n_opt * 4 < n_uniform,
            "optimization must reduce N substantially: {n_uniform} → {n_opt}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut b = CircuitBuilder::new("d");
        let xs = b.input_bus("x", 4);
        let t = b.and_tree(&xs);
        b.output(t, "z");
        let ckt = b.finish().unwrap();
        let analyzer = Analyzer::new(&ckt);
        let p = OptimizeParams {
            seed: 42,
            ..OptimizeParams::default()
        };
        let a = HillClimber::new(&analyzer, p).optimize().unwrap();
        let b2 = HillClimber::new(&analyzer, p).optimize().unwrap();
        assert_eq!(a.grid_ks, b2.grid_ks);
    }

    #[test]
    fn multi_distribution_covers_conflicting_fault_classes() {
        // z1 = AND(x0..x7) wants all-ones patterns; z2 = NOR(x0..x7) wants
        // all-zeros. No single product distribution detects both hard
        // faults (z1 sa0 and z2 sa0) within a small budget, but two
        // distributions do.
        let mut b = CircuitBuilder::new("conflict");
        let xs = b.input_bus("x", 8);
        let z1 = b.and(&xs);
        let z2 = b.nor(&xs);
        b.output(z1, "z1");
        b.output(z2, "z2");
        let ckt = b.finish().unwrap();
        let analyzer = Analyzer::new(&ckt);
        let params = OptimizeParams {
            n_target: 200,
            ..OptimizeParams::default()
        };
        let hc = HillClimber::new(&analyzer, params);
        // Single distribution: at least one hard fault stays uncovered at
        // the 200-pattern budget.
        let single = hc.optimize_multi(1, 200, 0.95).unwrap();
        assert!(
            single.uncovered() > 0,
            "single distribution should not suffice"
        );
        // A few distributions cover everything.
        let multi = hc.optimize_multi(4, 200, 0.95).unwrap();
        assert_eq!(
            multi.uncovered(),
            0,
            "multiple distributions must cover all"
        );
        assert!(multi.distributions.len() >= 2);
        // The rounds must pull the inputs in opposite directions.
        let mean =
            |r: &OptimizationResult| r.probs.as_slice().iter().sum::<f64>() / r.probs.len() as f64;
        let means: Vec<f64> = multi.distributions.iter().map(mean).collect();
        let hi = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            hi - lo > 0.4,
            "distributions should polarize: means {means:?}"
        );
    }

    #[test]
    fn multi_distribution_single_round_on_easy_circuit() {
        // A parity tree is fully covered by the first (uniform-ish)
        // distribution; optimize_multi must stop after one round.
        let mut b = CircuitBuilder::new("easy");
        let xs = b.input_bus("x", 6);
        let t = b.xor_tree(&xs);
        b.output(t, "z");
        let ckt = b.finish().unwrap();
        let analyzer = Analyzer::new(&ckt);
        let hc = HillClimber::new(&analyzer, OptimizeParams::default());
        let multi = hc.optimize_multi(4, 500, 0.95).unwrap();
        assert_eq!(multi.distributions.len(), 1);
        assert_eq!(multi.uncovered(), 0);
        assert!(multi.covered_by.iter().all(|&c| c == Some(0)));
    }

    #[test]
    fn results_stay_on_grid() {
        let mut b = CircuitBuilder::new("g");
        let xs = b.input_bus("x", 3);
        let t = b.or_tree(&xs);
        b.output(t, "z");
        let ckt = b.finish().unwrap();
        let analyzer = Analyzer::new(&ckt);
        let res = HillClimber::new(&analyzer, OptimizeParams::default())
            .optimize()
            .unwrap();
        for (&k, &p) in res.grid_ks.iter().zip(res.probs.as_slice()) {
            assert!((1..16).contains(&k));
            assert!((p - k as f64 / 16.0).abs() < 1e-12);
        }
    }
}
