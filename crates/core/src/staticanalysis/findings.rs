//! The findings model: typed, located diagnostics produced by the lint
//! passes and the redundancy prover.

use std::fmt;

use protest_netlist::NodeId;

/// How serious a finding is for the circuit's testability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Harmless, but worth knowing (a duplicated gate, an unused input).
    Info,
    /// Logic whose faults inflate test lengths without being testable
    /// (constant nets, dead gates).
    Warning,
    /// Logic that is provably useless silicon: it reaches no output under
    /// any input assignment.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The typed catalogue of structural defects the lint passes detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// A gate output proven constant by propagation from tied
    /// ([`GateKind::Const`](protest_netlist::GateKind::Const)) nets.
    ConstantNet,
    /// A gate (or input-fed cone) from which no primary output is
    /// structurally reachable.
    DeadGate,
    /// A gate that reaches outputs structurally, but only through edges
    /// blocked by a constant controlling side input — no value change at
    /// it can ever be observed.
    UnobservableGate,
    /// A primary input that drives nothing and is not itself an output.
    DanglingInput,
    /// A gate computing the same function as an earlier gate over the
    /// identical fanins (structural duplicate).
    DuplicateGate,
    /// A stuck-at fault class proven undetectable by the redundancy
    /// prover.
    RedundantFault,
}

impl FindingKind {
    /// Short kebab-case tag (used by the JSON renderer).
    pub fn tag(self) -> &'static str {
        match self {
            FindingKind::ConstantNet => "constant-net",
            FindingKind::DeadGate => "dead-gate",
            FindingKind::UnobservableGate => "unobservable-gate",
            FindingKind::DanglingInput => "dangling-input",
            FindingKind::DuplicateGate => "duplicate-gate",
            FindingKind::RedundantFault => "redundant-fault",
        }
    }
}

/// One diagnostic: what was found, how bad it is, and where.
#[derive(Debug, Clone)]
pub struct Finding {
    /// What kind of defect this is.
    pub kind: FindingKind,
    /// How serious it is.
    pub severity: Severity,
    /// The node the finding is anchored at, when it concerns a single
    /// node (fault findings name the class representative's site).
    pub node: Option<NodeId>,
    /// Human-readable location (node label, or a fault label).
    pub label: String,
    /// What is wrong, in one sentence.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [{}]: {}",
            self.severity,
            self.label,
            self.kind.tag(),
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severities_order_by_badness() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn findings_render_compactly() {
        let f = Finding {
            kind: FindingKind::DeadGate,
            severity: Severity::Warning,
            node: None,
            label: "g7".to_string(),
            message: "no path to any primary output".to_string(),
        };
        assert_eq!(
            f.to_string(),
            "warning: g7 [dead-gate]: no path to any primary output"
        );
    }
}
