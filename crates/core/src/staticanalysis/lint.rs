//! Structural lint passes: constant nets, dead and unobservable logic,
//! dangling inputs, duplicate gates.
//!
//! Every pass is purely structural — no probabilities involved — and each
//! defect becomes a typed [`Finding`]. The constant lattice and the
//! cut-edge observability computed here are shared with the redundancy
//! prover (`redundancy`), which re-derives per-fault versions of the same
//! facts.

use std::collections::HashMap;

use protest_netlist::analyze::Fanouts;
use protest_netlist::{Circuit, GateKind, Levels, NodeId};

use super::findings::{Finding, FindingKind, Severity};

/// The robust constant lattice: `Some(v)` means the node's output is `v`
/// under *every* input assignment, proven by forward propagation from
/// [`GateKind::Const`] gates alone (primary inputs stay unknown).
pub(crate) fn const_lattice(circuit: &Circuit) -> Vec<Option<bool>> {
    let levels = Levels::new(circuit);
    let mut value: Vec<Option<bool>> = vec![None; circuit.num_nodes()];
    for &id in levels.order() {
        let node = circuit.node(id);
        let vals = |i: usize| value[node.fanins()[i].index()];
        value[id.index()] = match node.kind() {
            GateKind::Input => None,
            GateKind::Const(v) => Some(v),
            GateKind::Buf => vals(0),
            GateKind::Not => vals(0).map(|v| !v),
            GateKind::And | GateKind::Nand => {
                let fixed = all_or_controlling(node.fanins(), &value, false);
                fixed.map(|v| {
                    if matches!(node.kind(), GateKind::Nand) {
                        !v
                    } else {
                        v
                    }
                })
            }
            GateKind::Or | GateKind::Nor => {
                let fixed = all_or_controlling(node.fanins(), &value, true);
                fixed.map(|v| {
                    if matches!(node.kind(), GateKind::Nor) {
                        !v
                    } else {
                        v
                    }
                })
            }
            GateKind::Xor | GateKind::Xnor => {
                // Parity is determined only when every fanin is.
                let mut acc = Some(matches!(node.kind(), GateKind::Xnor));
                for &f in node.fanins() {
                    acc = match (acc, value[f.index()]) {
                        (Some(a), Some(b)) => Some(a ^ b),
                        _ => None,
                    };
                }
                acc
            }
            GateKind::Lut(lid) => {
                let mut words = Vec::with_capacity(node.fanins().len());
                let mut known = true;
                for &f in node.fanins() {
                    match value[f.index()] {
                        Some(v) => words.push(if v { !0u64 } else { 0 }),
                        None => {
                            known = false;
                            break;
                        }
                    }
                }
                if known {
                    Some(circuit.lut(lid).eval_words(&words) & 1 != 0)
                } else {
                    None
                }
            }
        };
    }
    value
}

/// AND/OR-family evaluation on the lattice: `Some(c)` if any fanin holds
/// the controlling value `c`, `Some(!c)` if all fanins hold `!c`, `None`
/// otherwise.
fn all_or_controlling(
    fanins: &[NodeId],
    value: &[Option<bool>],
    controlling: bool,
) -> Option<bool> {
    let mut all_noncontrolling = true;
    for &f in fanins {
        match value[f.index()] {
            Some(v) if v == controlling => return Some(controlling),
            Some(_) => {}
            None => all_noncontrolling = false,
        }
    }
    if all_noncontrolling {
        Some(!controlling)
    } else {
        None
    }
}

/// Whether the lattice `value` is controlling for gate kind `kind` — a
/// side input holding it forces the gate's output regardless of the other
/// pins, blocking fault propagation through them.
pub(crate) fn is_controlling(kind: GateKind, value: bool) -> bool {
    match kind {
        GateKind::And | GateKind::Nand => !value,
        GateKind::Or | GateKind::Nor => value,
        _ => false,
    }
}

/// Whether the fanout edge into `gate` at `pin` is *cut*: some other pin
/// holds a proven constant that controls the gate, so no value change can
/// pass through this edge. `invalidated(n)` masks lattice facts whose
/// deriving node may itself be disturbed (the redundancy prover passes the
/// fault's forward cone; the global lint pass passes `|_| false`).
pub(crate) fn edge_is_cut(
    circuit: &Circuit,
    lattice: &[Option<bool>],
    gate: NodeId,
    pin: usize,
    invalidated: &dyn Fn(NodeId) -> bool,
) -> bool {
    let node = circuit.node(gate);
    for (j, &driver) in node.fanins().iter().enumerate() {
        if j == pin || invalidated(driver) {
            continue;
        }
        if let Some(v) = lattice[driver.index()] {
            if is_controlling(node.kind(), v) {
                return true;
            }
        }
    }
    false
}

/// Reverse reachability from the primary outputs over *uncut* fanout
/// edges: `result[n]` is true when a value change at `n`'s output has at
/// least one structurally open path to an output. Shared with the prover,
/// which calls it with a per-fault `invalidated` cone.
pub(crate) fn observable_set(
    circuit: &Circuit,
    fanouts: &Fanouts,
    levels: &Levels,
    lattice: &[Option<bool>],
    invalidated: &dyn Fn(NodeId) -> bool,
) -> Vec<bool> {
    let mut obs = vec![false; circuit.num_nodes()];
    for &id in levels.order().iter().rev() {
        if circuit.is_output(id) {
            obs[id.index()] = true;
            continue;
        }
        obs[id.index()] = fanouts.of(id).iter().any(|&(g, pin)| {
            obs[g.index()] && !edge_is_cut(circuit, lattice, g, pin as usize, invalidated)
        });
    }
    obs
}

/// Backward reachability from the primary outputs (ignoring cuts): the
/// complement is the structurally dead region.
fn live_set(circuit: &Circuit) -> Vec<bool> {
    let mut live = vec![false; circuit.num_nodes()];
    let mut stack: Vec<NodeId> = circuit.outputs().to_vec();
    for &o in circuit.outputs() {
        live[o.index()] = true;
    }
    while let Some(n) = stack.pop() {
        for &f in circuit.node(n).fanins() {
            if !live[f.index()] {
                live[f.index()] = true;
                stack.push(f);
            }
        }
    }
    live
}

/// Structural-hash key for duplicate detection: gate kind plus fanins,
/// sorted for the symmetric kinds so `AND(a, b)` and `AND(b, a)` collide.
fn structural_key(circuit: &Circuit, id: NodeId) -> Option<(GateKind, Vec<NodeId>)> {
    let node = circuit.node(id);
    let kind = node.kind();
    if matches!(kind, GateKind::Input | GateKind::Const(_)) {
        return None;
    }
    let mut fanins = node.fanins().to_vec();
    if matches!(
        kind,
        GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor
    ) {
        fanins.sort();
    }
    Some((kind, fanins))
}

/// Runs every structural lint pass and returns the findings together with
/// the constant lattice (reused by the redundancy prover).
pub(crate) fn lint(circuit: &Circuit, fanouts: &Fanouts) -> (Vec<Finding>, Vec<Option<bool>>) {
    let lattice = const_lattice(circuit);
    let live = live_set(circuit);
    let levels = Levels::new(circuit);
    let no_cuts = |_: NodeId| false;
    let obs = observable_set(circuit, fanouts, &levels, &lattice, &no_cuts);
    let mut findings = Vec::new();

    // Constant nets: real gates (not the Const sources themselves) whose
    // output is pinned by tied inputs.
    for (id, node) in circuit.iter() {
        if matches!(node.kind(), GateKind::Input | GateKind::Const(_)) {
            continue;
        }
        if let Some(v) = lattice[id.index()] {
            findings.push(Finding {
                kind: FindingKind::ConstantNet,
                severity: Severity::Warning,
                node: Some(id),
                label: circuit.node_label(id),
                message: format!("output is constant {} under every input", v as u8),
            });
        }
    }

    // Dangling inputs and dead gates.
    for (id, node) in circuit.iter() {
        if matches!(node.kind(), GateKind::Input) {
            if fanouts.degree(id) == 0 && !circuit.is_output(id) {
                findings.push(Finding {
                    kind: FindingKind::DanglingInput,
                    severity: Severity::Info,
                    node: Some(id),
                    label: circuit.node_label(id),
                    message: "primary input drives nothing".to_string(),
                });
            }
            continue;
        }
        if matches!(node.kind(), GateKind::Const(_)) {
            continue;
        }
        if !live[id.index()] {
            findings.push(Finding {
                kind: FindingKind::DeadGate,
                severity: Severity::Warning,
                node: Some(id),
                label: circuit.node_label(id),
                message: "no path to any primary output".to_string(),
            });
        } else if !obs[id.index()] {
            findings.push(Finding {
                kind: FindingKind::UnobservableGate,
                severity: Severity::Error,
                node: Some(id),
                label: circuit.node_label(id),
                message: "every output path is blocked by a constant controlling side input"
                    .to_string(),
            });
        }
    }

    // Structural duplicates: first occurrence wins, later twins are
    // flagged.
    let mut seen: HashMap<(GateKind, Vec<NodeId>), NodeId> = HashMap::new();
    for (id, _) in circuit.iter() {
        let Some(key) = structural_key(circuit, id) else {
            continue;
        };
        match seen.entry(key) {
            std::collections::hash_map::Entry::Occupied(first) => {
                findings.push(Finding {
                    kind: FindingKind::DuplicateGate,
                    severity: Severity::Info,
                    node: Some(id),
                    label: circuit.node_label(id),
                    message: format!(
                        "computes the same function as {}",
                        circuit.node_label(*first.get())
                    ),
                });
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(id);
            }
        }
    }
    (findings, lattice)
}

#[cfg(test)]
mod tests {
    use protest_netlist::CircuitBuilder;

    use super::*;

    fn kinds(findings: &[Finding]) -> Vec<FindingKind> {
        findings.iter().map(|f| f.kind).collect()
    }

    #[test]
    fn constant_propagation_through_gates() {
        // AND(a, const0) = 0; OR of that with const1 = 1; XOR(c0, c1) = 1.
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let c0 = b.constant(false);
        let c1 = b.constant(true);
        let g0 = b.and2(a, c0);
        let g1 = b.or2(g0, c1);
        let g2 = b.xor2(c0, c1);
        let z = b.and2(g1, g2);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let lattice = const_lattice(&ckt);
        assert_eq!(lattice[g0.index()], Some(false));
        assert_eq!(lattice[g1.index()], Some(true));
        assert_eq!(lattice[g2.index()], Some(true));
        assert_eq!(lattice[z.index()], Some(true));
        assert_eq!(lattice[a.index()], None);
    }

    #[test]
    fn dead_and_dangling_are_distinguished() {
        let mut b = CircuitBuilder::new("d");
        let a = b.input("a");
        let u = b.input("unused");
        let c = b.input("c");
        let _dead = b.and2(a, c); // consumed by nobody
        let z = b.not(a);
        b.output(z, "z");
        let _ = u;
        let ckt = b.finish().unwrap();
        let fanouts = Fanouts::new(&ckt);
        let (findings, _) = lint(&ckt, &fanouts);
        let ks = kinds(&findings);
        assert!(ks.contains(&FindingKind::DeadGate));
        assert!(ks.contains(&FindingKind::DanglingInput));
        // `c` is an input feeding only the dead gate: it has fanout, so it
        // is not dangling; inputs are never flagged dead.
        assert_eq!(
            ks.iter()
                .filter(|&&k| k == FindingKind::DanglingInput)
                .count(),
            1
        );
    }

    #[test]
    fn constant_side_input_makes_logic_unobservable() {
        // g = AND(x, const0): everything feeding g only is unobservable
        // (and g itself is a constant net).
        let mut b = CircuitBuilder::new("u");
        let a = b.input("a");
        let c0 = b.constant(false);
        let x = b.not(a);
        let g = b.and2(x, c0);
        let z = b.or2(g, a);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let fanouts = Fanouts::new(&ckt);
        let (findings, _) = lint(&ckt, &fanouts);
        let unobservable: Vec<_> = findings
            .iter()
            .filter(|f| f.kind == FindingKind::UnobservableGate)
            .map(|f| f.node.unwrap())
            .collect();
        assert!(
            unobservable.contains(&x),
            "x only reaches z through the cut AND"
        );
        let constant: Vec<_> = findings
            .iter()
            .filter(|f| f.kind == FindingKind::ConstantNet)
            .map(|f| f.node.unwrap())
            .collect();
        assert!(constant.contains(&g));
    }

    #[test]
    fn symmetric_duplicates_collide() {
        let mut b = CircuitBuilder::new("dup");
        let a = b.input("a");
        let c = b.input("c");
        let g1 = b.and2(a, c);
        let g2 = b.and2(c, a); // same function, swapped fanins
        let z = b.or2(g1, g2);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let fanouts = Fanouts::new(&ckt);
        let (findings, _) = lint(&ckt, &fanouts);
        let dups: Vec<_> = findings
            .iter()
            .filter(|f| f.kind == FindingKind::DuplicateGate)
            .collect();
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].node, Some(g2));
    }

    #[test]
    fn clean_circuits_produce_no_findings() {
        let ckt = protest_circuits::c17();
        let fanouts = Fanouts::new(&ckt);
        let (findings, lattice) = lint(&ckt, &fanouts);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(lattice.iter().all(Option::is_none));
    }
}
