//! Static netlist analysis: lint passes, dominator-based fault collapsing
//! and BDD-backed redundancy proving — everything PROTEST can say about a
//! circuit *before* touching probabilities.
//!
//! # Pass pipeline
//!
//! [`check`] runs the passes in dependency order:
//!
//! 1. **Lint** ([`FindingKind`]) — constant-net propagation from tied
//!    inputs, dead and unobservable logic, dangling inputs, structural
//!    duplicates. Each defect is a typed [`Finding`] with a severity and a
//!    location.
//! 2. **Dominators** — immediate dominators of the fanout graph
//!    ([`protest_netlist::analyze::Dominators`]): single-path propagation
//!    implications per stem, the structure behind dominance fault
//!    collapsing ([`protest_sim::collapse::dominance_collapse`]) and the
//!    prover's widening tier.
//! 3. **Fault collapsing** — equivalence classes (identical test sets)
//!    first, then dominance merging (detecting the representative implies
//!    detecting every member), reported as collapse ratios.
//! 4. **Redundancy proving** (optional, [`CheckParams::prove_redundant`])
//!    — the four-tier prover of [`redundancy`]: constant activation,
//!    static unobservability, dominator widening, and exact miter BDDs
//!    under a node budget. Proven-redundant classes become
//!    [`FindingKind::RedundantFault`] findings and are pruned from the
//!    class counts; budget exhaustion is reported as *unproven*, never
//!    guessed.
//!
//! # Finding taxonomy and severities
//!
//! `Info` findings are clean-ups (duplicates, dangling inputs); `Warning`
//! marks logic that inflates test lengths without being testable
//! (constants, dead gates); `Error` marks provably useless silicon
//! (unobservable gates, redundant faults). The checker never fails the
//! run — findings are a report, not a gate.
//!
//! # Budget semantics
//!
//! The prover's [`CheckParams::node_budget`] caps each miter BDD. Within
//! the budget every verdict is exact: `Redundant` means detection
//! probability identically zero, `Testable` carries the exact detection
//! probability (not an estimate). Past the budget the class is `Unproven`
//! and is treated exactly like a testable class by every downstream
//! consumer — pruning is sound-by-construction.
//!
//! The same machinery runs inside [`Analyzer`](crate::Analyzer) when
//! [`AnalyzerParams::collapse`](crate::AnalyzerParams::collapse) or
//! [`AnalyzerParams::prune_redundant`](crate::AnalyzerParams::prune_redundant)
//! is set, and behind `protest check` on the command line.

mod findings;
mod lint;
pub mod redundancy;

pub use findings::{Finding, FindingKind, Severity};
pub use redundancy::{ProverStats, RedundancyReason, Verdict};

use std::fmt;

use protest_netlist::analyze::{Dominators, Fanouts};
use protest_netlist::{Circuit, GateKind};
use protest_sim::{collapse_universe, dominance_collapse, FaultUniverse};

/// Knobs of the [`check`] entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckParams {
    /// Run the redundancy prover (the expensive, BDD-backed pass).
    pub prove_redundant: bool,
    /// BDD node budget per miter proof (see the module docs).
    pub node_budget: usize,
    /// Worker threads for the prover (0 = auto, like
    /// [`AnalyzerParams::num_threads`](crate::AnalyzerParams::num_threads)).
    pub num_threads: usize,
}

impl Default for CheckParams {
    fn default() -> Self {
        CheckParams {
            prove_redundant: false,
            node_budget: 200_000,
            num_threads: 0,
        }
    }
}

/// The prover's summary inside a [`StaticReport`].
#[derive(Debug, Clone)]
pub struct ProverReport {
    /// Aggregate counters (classes by tier and outcome).
    pub stats: ProverStats,
    /// Per-class verdicts, aligned with the equivalence classes.
    pub verdicts: Vec<Verdict>,
    /// Expanded fault count of the proven-redundant classes.
    pub redundant_faults: usize,
    /// Smallest exact detection probability among proven-testable classes.
    pub min_exact_detection: Option<f64>,
}

/// Everything the static analysis layer can report about a circuit.
#[derive(Debug, Clone)]
pub struct StaticReport {
    /// Circuit name.
    pub circuit_name: String,
    /// Lint findings, then one `RedundantFault` finding per proven class.
    pub findings: Vec<Finding>,
    /// Uncollapsed fault universe size.
    pub universe_faults: usize,
    /// Equivalence classes (before any pruning).
    pub equivalence_classes: usize,
    /// Classes after redundancy pruning (equals `equivalence_classes`
    /// when the prover did not run or proved nothing).
    pub pruned_classes: usize,
    /// Classes after dominance merging on the pruned survivors.
    pub dominance_classes: usize,
    /// Nodes whose immediate dominator is a real gate — stems with a
    /// single-path propagation implication.
    pub dominated_stems: usize,
    /// Prover results, when [`CheckParams::prove_redundant`] was set.
    pub prover: Option<ProverReport>,
}

impl StaticReport {
    /// Findings at or above a severity.
    pub fn findings_at_least(&self, severity: Severity) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.severity >= severity)
    }

    /// Renders the report as a JSON object (hand-rolled — the workspace
    /// carries no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"circuit\": \"{}\",\n",
            escape(&self.circuit_name)
        ));
        out.push_str(&format!(
            "  \"universe_faults\": {},\n",
            self.universe_faults
        ));
        out.push_str(&format!(
            "  \"equivalence_classes\": {},\n",
            self.equivalence_classes
        ));
        out.push_str(&format!("  \"pruned_classes\": {},\n", self.pruned_classes));
        out.push_str(&format!(
            "  \"dominance_classes\": {},\n",
            self.dominance_classes
        ));
        out.push_str(&format!(
            "  \"dominated_stems\": {},\n",
            self.dominated_stems
        ));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"kind\": \"{}\", \"severity\": \"{}\", \"label\": \"{}\", \"message\": \"{}\"}}{}\n",
                f.kind.tag(),
                f.severity,
                escape(&f.label),
                escape(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        match &self.prover {
            None => out.push_str("  \"prover\": null\n"),
            Some(p) => {
                out.push_str("  \"prover\": {\n");
                out.push_str(&format!("    \"classes\": {},\n", p.stats.classes));
                out.push_str(&format!(
                    "    \"proven_redundant\": {},\n",
                    p.stats.redundant
                ));
                out.push_str(&format!(
                    "    \"redundant_faults\": {},\n",
                    p.redundant_faults
                ));
                out.push_str(&format!("    \"proven_testable\": {},\n", p.stats.testable));
                out.push_str(&format!("    \"unproven\": {},\n", p.stats.unproven));
                out.push_str(&format!(
                    "    \"by_tier\": {{\"constant_site\": {}, \"unobservable\": {}, \"dominated\": {}, \"bdd\": {}}},\n",
                    p.stats.by_constant_site,
                    p.stats.by_unobservable,
                    p.stats.by_dominator,
                    p.stats.by_bdd
                ));
                out.push_str(&format!("    \"bdd_calls\": {},\n", p.stats.bdd_calls));
                out.push_str(&format!(
                    "    \"budget_exceeded\": {},\n",
                    p.stats.budget_exceeded
                ));
                match p.min_exact_detection {
                    Some(p_min) => {
                        out.push_str(&format!("    \"min_exact_detection\": {p_min:e}\n"))
                    }
                    None => out.push_str("    \"min_exact_detection\": null\n"),
                }
                out.push_str("  }\n");
            }
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl fmt::Display for StaticReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PROTEST static check — {}", self.circuit_name)?;
        writeln!(f, "{}", "=".repeat(50))?;
        if self.findings.is_empty() {
            writeln!(f, "lint: clean")?;
        } else {
            writeln!(f, "lint findings:")?;
            for finding in &self.findings {
                writeln!(f, "  {finding}")?;
            }
        }
        writeln!(
            f,
            "faults: {} uncollapsed -> {} equivalence classes -> {} after pruning -> {} dominance classes",
            self.universe_faults,
            self.equivalence_classes,
            self.pruned_classes,
            self.dominance_classes
        )?;
        writeln!(
            f,
            "dominators: {} stems with a single-path propagation implication",
            self.dominated_stems
        )?;
        if let Some(p) = &self.prover {
            writeln!(
                f,
                "redundancy prover: {} classes -> {} proven redundant ({} faults), {} proven testable, {} unproven",
                p.stats.classes,
                p.stats.redundant,
                p.redundant_faults,
                p.stats.testable,
                p.stats.unproven
            )?;
            writeln!(
                f,
                "  tiers: {} constant-site, {} unobservable, {} dominated, {} bdd-zero ({} miter BDDs, {} over budget)",
                p.stats.by_constant_site,
                p.stats.by_unobservable,
                p.stats.by_dominator,
                p.stats.by_bdd,
                p.stats.bdd_calls,
                p.stats.budget_exceeded
            )?;
            if let Some(p_min) = p.min_exact_detection {
                writeln!(f, "  min exact detection probability: {p_min:.3e}")?;
            }
        }
        Ok(())
    }
}

/// Runs the full static analysis pipeline (see the module docs).
pub fn check(circuit: &Circuit, params: &CheckParams) -> StaticReport {
    check_cancellable(circuit, params, &crate::cancel::CancelToken::never())
        .expect("a disarmed token never cancels")
}

/// Cancellable form of [`check`]: polls `cancel` between pipeline passes
/// and inside the redundancy prover's per-class/per-miter loops.
///
/// # Errors
///
/// Returns [`CoreError`](crate::CoreError)`::Cancelled` when the token
/// fires; no partial report is produced.
pub fn check_cancellable(
    circuit: &Circuit,
    params: &CheckParams,
    cancel: &crate::cancel::CancelToken,
) -> Result<StaticReport, crate::CoreError> {
    let fanouts = Fanouts::new(circuit);
    let lint_span = protest_telemetry::span(protest_telemetry::Site::CheckLint);
    let (mut findings, _lattice) = lint::lint(circuit, &fanouts);
    drop(lint_span);
    let dom_span = protest_telemetry::span(protest_telemetry::Site::CheckDominators);
    let doms = Dominators::new(circuit, &fanouts);
    let dominated_stems = circuit
        .iter()
        .filter(|&(id, node)| !matches!(node.kind(), GateKind::Const(_)) && doms.idom(id).is_some())
        .count();
    drop(dom_span);

    cancel.check()?;
    let collapse_span = protest_telemetry::span(protest_telemetry::Site::CheckCollapse);
    let universe = FaultUniverse::all(circuit);
    let equiv = collapse_universe(circuit, &universe);
    drop(collapse_span);

    let (prover, pruned) = if params.prove_redundant {
        cancel.check()?;
        let probs = vec![0.5; circuit.num_inputs()];
        let (verdicts, stats) = redundancy::prove_classes_cancellable(
            circuit,
            &equiv,
            &probs,
            params.node_budget,
            params.num_threads,
            cancel,
        )?;
        let keep: Vec<bool> = verdicts.iter().map(|v| !v.is_redundant()).collect();
        let redundant_faults: usize = equiv
            .classes()
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| !k)
            .map(|(c, _)| c.len())
            .sum();
        for (ci, v) in verdicts.iter().enumerate() {
            if let Verdict::Redundant(reason) = v {
                let rep = equiv.representatives()[ci];
                findings.push(Finding {
                    kind: FindingKind::RedundantFault,
                    severity: Severity::Error,
                    node: Some(rep.site.affected()),
                    label: rep.label(circuit),
                    message: format!(
                        "proven undetectable ({}); class of {} fault(s) pruned",
                        reason.tag(),
                        equiv.classes()[ci].len()
                    ),
                });
            }
        }
        let min_exact_detection = verdicts
            .iter()
            .filter_map(|v| match v {
                Verdict::Testable { p_exact } => Some(*p_exact),
                _ => None,
            })
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pruned = equiv.filtered(&keep);
        (
            Some(ProverReport {
                stats,
                verdicts,
                redundant_faults,
                min_exact_detection,
            }),
            pruned,
        )
    } else {
        (None, equiv.clone())
    };

    cancel.check()?;
    let dominance = dominance_collapse(circuit, &pruned);
    Ok(StaticReport {
        circuit_name: circuit.name().to_string(),
        findings,
        universe_faults: universe.len(),
        equivalence_classes: equiv.len(),
        pruned_classes: pruned.len(),
        dominance_classes: dominance.len(),
        dominated_stems,
        prover,
    })
}

#[cfg(test)]
mod tests {
    use protest_netlist::CircuitBuilder;

    use super::*;

    #[test]
    fn clean_circuit_checks_clean() {
        let ckt = protest_circuits::c17();
        let report = check(&ckt, &CheckParams::default());
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.prover.is_none());
        assert!(report.dominance_classes <= report.equivalence_classes);
        assert!(report.equivalence_classes <= report.universe_faults);
        let text = report.to_string();
        assert!(text.contains("lint: clean"), "{text}");
        assert!(text.contains("equivalence classes"), "{text}");
    }

    #[test]
    fn prover_prunes_redundant_classes_and_reports_them() {
        // z = OR(a, NOT a) is constant 1: z sa1 (and the a/na faults) are
        // redundant; w = AND(a, c) keeps the circuit nontrivial.
        let mut b = CircuitBuilder::new("red");
        let a = b.input("a");
        let c = b.input("c");
        let na = b.not(a);
        let z = b.or2(a, na);
        let w = b.and2(a, c);
        b.output(z, "z");
        b.output(w, "w");
        let ckt = b.finish().unwrap();
        let report = check(
            &ckt,
            &CheckParams {
                prove_redundant: true,
                ..CheckParams::default()
            },
        );
        let p = report.prover.as_ref().unwrap();
        assert!(p.stats.redundant >= 1, "{:?}", p.stats);
        assert_eq!(p.stats.unproven, 0);
        assert!(report.pruned_classes < report.equivalence_classes);
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::RedundantFault));
        let text = report.to_string();
        assert!(text.contains("proven redundant"), "{text}");
        let json = report.to_json();
        assert!(json.contains("\"proven_redundant\""), "{json}");
        assert!(json.contains("\"redundant-fault\""), "{json}");
    }

    #[test]
    fn json_renders_without_prover_too() {
        let ckt = protest_circuits::c17();
        let report = check(&ckt, &CheckParams::default());
        let json = report.to_json();
        assert!(json.contains("\"prover\": null"), "{json}");
        assert!(json.contains("\"equivalence_classes\""), "{json}");
    }
}
