//! The redundancy prover: certifies stuck-at fault classes whose detection
//! probability is *exactly* zero, so they can be pruned from every
//! downstream probabilistic computation.
//!
//! Proofs run in four tiers, cheapest first; a class is charged to the
//! first tier that resolves it:
//!
//! 1. **Constant activation** — if the fault site is proven constant `v`
//!    by the lint lattice ([`super::check`](crate::check)'s pass 1), the stuck-at-`v` fault never
//!    changes any net and is unconditionally redundant.
//! 2. **Static unobservability** — a fault whose every output path
//!    crosses an edge blocked by a constant controlling side input (with
//!    the fault's own forward cone excluded from the constant facts, so
//!    the cut still holds in the faulty circuit) can never be observed.
//! 3. **Dominator widening** — once *both* output stuck-at faults of a
//!    gate `g` are proven redundant, no value change at `g` is ever
//!    visible; every fault whose site is dominated by `g` (all output
//!    paths pass through `g`) is then redundant without further proof.
//!    This tier runs to a fixpoint before and after the BDD tier.
//! 4. **Exact BDD proof** — the remaining classes get a good/faulty miter
//!    ([`build_miter`]), built as a BDD under a DFS-fanin variable order
//!    with a node budget; a constant-false `diff` function certifies
//!    redundancy, anything else yields the *exact* detection probability.
//!    A blown budget is reported honestly as [`Verdict::Unproven`], never
//!    as a verdict either way.
//!
//! Equivalence classes share identical test sets, so one proof per class
//! covers every member; the BDD tier proves the representative, while the
//! static tiers may resolve the class through any member. The expensive
//! tier-4 calls are chunked over the analyzer's worker pool.

use std::collections::HashMap;

use protest_bdd::{build_node_bdds_with_order, dfs_variable_order, Manager};
use protest_netlist::analyze::{Dominators, Fanouts};
use protest_netlist::{Circuit, Levels, NodeId};
use protest_sim::{CollapsedUniverse, Fault, FaultSite};

use crate::cancel::CancelToken;
use crate::detect::build_miter;
use crate::error::CoreError;
use crate::exec::Exec;

use super::lint::{const_lattice, edge_is_cut, observable_set};

/// Why a fault class is undetectable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedundancyReason {
    /// The fault site is tied to the stuck value: the fault never changes
    /// any net.
    ConstantSite,
    /// Every propagation path is statically blocked by a constant
    /// controlling side input.
    Unobservable,
    /// All output paths pass through a gate both of whose output stuck-at
    /// faults are already proven redundant.
    DominatedByRedundant,
    /// The good/faulty miter's BDD is the constant-false function.
    ProvedZero,
}

impl RedundancyReason {
    /// Short kebab-case tag (used by reports and JSON).
    pub fn tag(self) -> &'static str {
        match self {
            RedundancyReason::ConstantSite => "constant-site",
            RedundancyReason::Unobservable => "unobservable",
            RedundancyReason::DominatedByRedundant => "dominated",
            RedundancyReason::ProvedZero => "bdd-zero",
        }
    }
}

/// The prover's answer for one fault class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Detection probability is exactly 0 under every input distribution.
    Redundant(RedundancyReason),
    /// Detection probability is exactly `p_exact` (> 0) under the given
    /// input probabilities — a BDD-certified value, not an estimate.
    Testable {
        /// Exact detection probability of the class under the prover's
        /// input probabilities.
        p_exact: f64,
    },
    /// The BDD node budget was exhausted before a proof either way.
    Unproven,
}

impl Verdict {
    /// Whether this class is certified undetectable.
    pub fn is_redundant(&self) -> bool {
        matches!(self, Verdict::Redundant(_))
    }
}

/// Aggregate prover counters (all in units of fault *classes*).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProverStats {
    /// Classes examined.
    pub classes: usize,
    /// Classes proven redundant (any tier).
    pub redundant: usize,
    /// Classes proven testable with an exact probability.
    pub testable: usize,
    /// Classes left unresolved by the node budget.
    pub unproven: usize,
    /// Tier-1 proofs (constant activation).
    pub by_constant_site: usize,
    /// Tier-2 proofs (static unobservability).
    pub by_unobservable: usize,
    /// Tier-3 proofs (dominator widening).
    pub by_dominator: usize,
    /// Tier-4 redundancy proofs (constant-false miter BDD).
    pub by_bdd: usize,
    /// Miter BDDs attempted.
    pub bdd_calls: usize,
    /// Miter BDDs aborted by the node budget.
    pub budget_exceeded: usize,
}

/// Proves every class of `equiv` redundant, testable or unproven.
///
/// `probs` are per-input probabilities used only to evaluate the exact
/// detection probability of testable classes (redundancy itself is
/// distribution-independent); `budget` caps each miter BDD's node count;
/// `num_threads` sizes the worker pool for the BDD tier (0 = auto, see
/// [`AnalyzerParams::num_threads`](crate::AnalyzerParams::num_threads)).
///
/// # Panics
///
/// Panics if `probs` does not match the circuit's input count.
pub fn prove_classes(
    circuit: &Circuit,
    equiv: &CollapsedUniverse,
    probs: &[f64],
    budget: usize,
    num_threads: usize,
) -> (Vec<Verdict>, ProverStats) {
    prove_classes_cancellable(
        circuit,
        equiv,
        probs,
        budget,
        num_threads,
        &CancelToken::never(),
    )
    .expect("a disarmed token never cancels")
}

/// Cancellable form of [`prove_classes`]: the static tiers poll `cancel`
/// per class and the BDD tier per miter, so a fired token abandons the
/// proof run between (never inside) individual BDD builds.
///
/// # Errors
///
/// Returns [`CoreError::Cancelled`] when the token fires; no partial
/// verdicts are returned.
///
/// # Panics
///
/// Panics if `probs` does not match the circuit's input count.
pub fn prove_classes_cancellable(
    circuit: &Circuit,
    equiv: &CollapsedUniverse,
    probs: &[f64],
    budget: usize,
    num_threads: usize,
    cancel: &CancelToken,
) -> Result<(Vec<Verdict>, ProverStats), CoreError> {
    assert_eq!(
        probs.len(),
        circuit.num_inputs(),
        "one probability per primary input"
    );
    let exec = Exec::new(num_threads);
    let mut verdicts: Vec<Option<Verdict>> = vec![None; equiv.len()];
    let mut stats = ProverStats {
        classes: equiv.len(),
        ..ProverStats::default()
    };
    let fanouts = Fanouts::new(circuit);
    let levels = Levels::new(circuit);
    let lattice = const_lattice(circuit);
    let has_consts = lattice.iter().any(Option::is_some);
    let doms = Dominators::new(circuit, &fanouts);
    let class_of: HashMap<Fault, u32> = equiv
        .classes()
        .iter()
        .enumerate()
        .flat_map(|(ci, class)| class.iter().map(move |&f| (f, ci as u32)))
        .collect();

    // Tier 1: constant activation. Any member's site being tied to its
    // stuck value settles the whole class (equal test sets).
    let const_span = protest_telemetry::span(protest_telemetry::Site::RedundancyConst);
    if has_consts {
        for (ci, class) in equiv.classes().iter().enumerate() {
            let tied = class
                .iter()
                .any(|f| lattice[f.site.driver(circuit).index()] == Some(f.polarity.bit()));
            if tied {
                verdicts[ci] = Some(Verdict::Redundant(RedundancyReason::ConstantSite));
                stats.by_constant_site += 1;
            }
        }
    }
    drop(const_span);

    // Tier 2: static unobservability. Without constant nets there are no
    // cut edges, and structurally dead faults are already excluded from
    // the universe, so the tier can only fire when tier 1 could.
    let unobs_span = protest_telemetry::span(protest_telemetry::Site::RedundancyUnobs);
    if has_consts {
        for (ci, class) in equiv.classes().iter().enumerate() {
            if verdicts[ci].is_some() {
                continue;
            }
            cancel.check()?;
            if class
                .iter()
                .any(|&f| statically_unobservable(circuit, &fanouts, &levels, &lattice, f))
            {
                verdicts[ci] = Some(Verdict::Redundant(RedundancyReason::Unobservable));
                stats.by_unobservable += 1;
            }
        }
    }

    drop(unobs_span);

    // Tier 3 before the BDD tier: anything dominated by an
    // already-redundant gate needs no miter at all.
    let widen_span = protest_telemetry::span(protest_telemetry::Site::RedundancyWiden);
    stats.by_dominator += widen_by_dominators(circuit, equiv, &doms, &class_of, &mut verdicts);
    drop(widen_span);

    // Tier 4: exact miter BDDs for whatever is left, fanned out over the
    // worker pool. Chunks write disjoint slices in class order, so the
    // result is deterministic at every thread count.
    let bdd_span = protest_telemetry::span(protest_telemetry::Site::RedundancyBdd);
    let todo: Vec<u32> = (0..equiv.len() as u32)
        .filter(|&ci| verdicts[ci as usize].is_none())
        .collect();
    stats.bdd_calls = todo.len();
    let mut proved: Vec<Verdict> = vec![Verdict::Unproven; todo.len()];
    if exec.parallel() && todo.len() > 1 {
        let chunk = todo.len().div_ceil(exec.threads());
        let out_all: &mut [Verdict] = &mut proved;
        exec.run(|| {
            rayon::scope(|s| {
                for (ids, out) in todo.chunks(chunk).zip(out_all.chunks_mut(chunk)) {
                    s.spawn(move |_| {
                        for (slot, &ci) in out.iter_mut().zip(ids) {
                            // A fired token abandons the chunk; the partial
                            // verdicts are discarded by the check below.
                            if cancel.is_cancelled() {
                                return;
                            }
                            let rep = equiv.representatives()[ci as usize];
                            *slot = prove_by_bdd(circuit, rep, probs, budget);
                        }
                    });
                }
            });
        });
        cancel.check()?;
    } else {
        for (slot, &ci) in proved.iter_mut().zip(&todo) {
            cancel.check()?;
            let rep = equiv.representatives()[ci as usize];
            *slot = prove_by_bdd(circuit, rep, probs, budget);
        }
    }
    for (&ci, &v) in todo.iter().zip(&proved) {
        if matches!(v, Verdict::Redundant(_)) {
            stats.by_bdd += 1;
        }
        if matches!(v, Verdict::Unproven) {
            stats.budget_exceeded += 1;
        }
        verdicts[ci as usize] = Some(v);
    }
    drop(bdd_span);

    // Tier 3 again: BDD-proven-redundant gates may dominate classes the
    // budget left unproven.
    let rewiden_span = protest_telemetry::span(protest_telemetry::Site::RedundancyWiden);
    stats.by_dominator += widen_by_dominators(circuit, equiv, &doms, &class_of, &mut verdicts);
    drop(rewiden_span);

    let final_verdicts: Vec<Verdict> = verdicts
        .into_iter()
        .map(|v| v.expect("every class resolved or unproven"))
        .collect();
    for v in &final_verdicts {
        match v {
            Verdict::Redundant(_) => stats.redundant += 1,
            Verdict::Testable { .. } => stats.testable += 1,
            Verdict::Unproven => stats.unproven += 1,
        }
    }
    Ok((final_verdicts, stats))
}

/// Tier-2 check for one fault: is every propagation path blocked by a
/// constant controlling side input whose deriving cone the fault cannot
/// disturb?
fn statically_unobservable(
    circuit: &Circuit,
    fanouts: &Fanouts,
    levels: &Levels,
    lattice: &[Option<bool>],
    fault: Fault,
) -> bool {
    // Constant facts inside the fault's forward cone may not hold in the
    // faulty circuit; exclude them from every cut.
    let start = fault.site.affected();
    let mut in_cone = vec![false; circuit.num_nodes()];
    let mut stack = vec![start];
    in_cone[start.index()] = true;
    while let Some(n) = stack.pop() {
        for &(g, _) in fanouts.of(n) {
            if !in_cone[g.index()] {
                in_cone[g.index()] = true;
                stack.push(g);
            }
        }
    }
    let invalidated = |n: NodeId| in_cone[n.index()];
    if let FaultSite::InputPin { gate, pin } = fault.site {
        if edge_is_cut(circuit, lattice, gate, pin as usize, &invalidated) {
            return true;
        }
    }
    let obs = observable_set(circuit, fanouts, levels, lattice, &invalidated);
    !obs[start.index()]
}

/// Tier 3: runs the dominator-widening rule to a fixpoint; returns how
/// many classes it newly resolved.
fn widen_by_dominators(
    circuit: &Circuit,
    equiv: &CollapsedUniverse,
    doms: &Dominators,
    class_of: &HashMap<Fault, u32>,
    verdicts: &mut [Option<Verdict>],
) -> usize {
    use protest_sim::StuckAt;
    let mut resolved = 0;
    loop {
        // Gates with both output stuck-at classes proven redundant: no
        // value change at them is ever observable.
        let mut blocked = vec![false; circuit.num_nodes()];
        let mut any_blocked = false;
        for (id, _) in circuit.iter() {
            let both = [StuckAt::Zero, StuckAt::One].iter().all(|&pol| {
                class_of
                    .get(&Fault::output(id, pol))
                    .is_some_and(|&ci| verdicts[ci as usize].is_some_and(|v| v.is_redundant()))
            });
            if both {
                blocked[id.index()] = true;
                any_blocked = true;
            }
        }
        if !any_blocked {
            return resolved;
        }
        let mut changed = false;
        for (ci, class) in equiv.classes().iter().enumerate() {
            if verdicts[ci].is_some() {
                continue;
            }
            let dominated = class.iter().any(|&f| {
                let site = f.site.affected();
                // A pin fault's effect first appears at the consuming
                // gate's output; an output fault's at its own node. Either
                // way the effect must traverse the whole dominator chain,
                // and for pin faults the consuming gate itself as well.
                let through_site =
                    matches!(f.site, FaultSite::InputPin { .. }) && blocked[site.index()];
                through_site || doms.chain(site).any(|d| blocked[d.index()])
            });
            if dominated {
                verdicts[ci] = Some(Verdict::Redundant(RedundancyReason::DominatedByRedundant));
                resolved += 1;
                changed = true;
            }
        }
        if !changed {
            return resolved;
        }
    }
}

/// Tier 4: one exact proof. Builds the good/faulty miter, orders BDD
/// variables by DFS over the miter's fanin cones (the order that keeps
/// ripple-structured circuits polynomial) and builds the `diff` function
/// under the node budget.
fn prove_by_bdd(circuit: &Circuit, rep: Fault, probs: &[f64], budget: usize) -> Verdict {
    let miter = build_miter(circuit, rep);
    // A budget that cannot even hold the variable nodes (plus the two
    // terminals) proves nothing.
    if budget < miter.num_inputs() + 2 {
        return Verdict::Unproven;
    }
    let order = dfs_variable_order(&miter);
    let mut manager = Manager::with_node_limit(miter.num_inputs(), budget);
    let Ok(bdds) = build_node_bdds_with_order(&mut manager, &miter, &order) else {
        return Verdict::Unproven;
    };
    let diff = bdds[miter.outputs()[0].index()];
    if diff == manager.constant(false) {
        return Verdict::Redundant(RedundancyReason::ProvedZero);
    }
    // `probability` indexes by BDD variable; the miter shares the base
    // circuit's inputs in declaration order, so permute through the order.
    let mut by_var = vec![0.5; miter.num_inputs()];
    for (i, &v) in order.iter().enumerate() {
        by_var[v] = probs[i];
    }
    Verdict::Testable {
        p_exact: manager.probability(diff, &by_var),
    }
}

#[cfg(test)]
mod tests {
    use protest_netlist::CircuitBuilder;
    use protest_sim::{collapse_universe, FaultUniverse, StuckAt};

    use super::*;

    fn prove(circuit: &Circuit) -> (CollapsedUniverse, Vec<Verdict>, ProverStats) {
        let universe = FaultUniverse::all(circuit);
        let equiv = collapse_universe(circuit, &universe);
        let probs = vec![0.5; circuit.num_inputs()];
        let (verdicts, stats) = prove_classes(circuit, &equiv, &probs, 100_000, 1);
        (equiv, verdicts, stats)
    }

    fn verdict_of(equiv: &CollapsedUniverse, verdicts: &[Verdict], fault: Fault) -> Verdict {
        let ci = equiv
            .classes()
            .iter()
            .position(|c| c.contains(&fault))
            .expect("fault not in any class");
        verdicts[ci]
    }

    #[test]
    fn tautology_faults_are_proven_by_bdd() {
        // z = a OR NOT a == 1: z's sa1 is redundant, a's faults are
        // unobservable (the classic redundant-logic example).
        let mut b = CircuitBuilder::new("taut");
        let a = b.input("a");
        let na = b.not(a);
        let z = b.or2(a, na);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let (equiv, verdicts, stats) = prove(&ckt);
        assert!(stats.redundant >= 3, "{stats:?}");
        assert!(verdict_of(&equiv, &verdicts, Fault::output(z, StuckAt::One)).is_redundant());
        assert!(verdict_of(&equiv, &verdicts, Fault::output(a, StuckAt::Zero)).is_redundant());
        // z sa0 is detected by every pattern.
        match verdict_of(&equiv, &verdicts, Fault::output(z, StuckAt::Zero)) {
            Verdict::Testable { p_exact } => assert!((p_exact - 1.0).abs() < 1e-12),
            v => panic!("z sa0 should be always detected, got {v:?}"),
        }
        // No constant nets here: these proofs need the BDD.
        assert!(stats.by_bdd >= 1, "{stats:?}");
        assert_eq!(stats.by_constant_site, 0);
    }

    #[test]
    fn tied_inputs_are_proven_without_bdds() {
        // g = AND(x, const0): g sa0 never activates (tier 1); x's faults
        // never propagate (tier 2). The OR keeps a testable path alive.
        let mut b = CircuitBuilder::new("tied");
        let a = b.input("a");
        let c0 = b.constant(false);
        let x = b.not(a);
        let g = b.and2(x, c0);
        let z = b.or2(g, a);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let (equiv, verdicts, stats) = prove(&ckt);
        assert_eq!(
            verdict_of(&equiv, &verdicts, Fault::output(g, StuckAt::Zero)),
            Verdict::Redundant(RedundancyReason::ConstantSite)
        );
        // x sa0 collapses into g sa0 through the fanout-free AND pin
        // (checkpoint-free collapse), so tier 1 covers it; x sa1 has no
        // constant-site member and needs the unobservability tier.
        assert_eq!(
            verdict_of(&equiv, &verdicts, Fault::output(x, StuckAt::Zero)),
            Verdict::Redundant(RedundancyReason::ConstantSite)
        );
        assert_eq!(
            verdict_of(&equiv, &verdicts, Fault::output(x, StuckAt::One)),
            Verdict::Redundant(RedundancyReason::Unobservable)
        );
        assert!(stats.by_constant_site >= 1);
        assert!(stats.by_unobservable >= 1);
        // a itself is directly observed through the OR: testable.
        assert!(!verdict_of(&equiv, &verdicts, Fault::output(a, StuckAt::Zero)).is_redundant());
    }

    #[test]
    fn dominator_tier_widens_without_extra_proofs() {
        // chain = NOT(NOT(x)) feeding g = AND(chain, const0): once g's
        // output faults are settled (tier 1 + tier 2), the chain's faults
        // are dominated. x also fans out to a live path so its own faults
        // stay testable.
        let mut b = CircuitBuilder::new("dom");
        let a = b.input("a");
        let c0 = b.constant(false);
        let n1 = b.not(a);
        let n2 = b.not(n1);
        let g = b.and2(n2, c0);
        let z = b.or2(g, a);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let (equiv, verdicts, stats) = prove(&ckt);
        for node in [n1, n2] {
            for pol in [StuckAt::Zero, StuckAt::One] {
                assert!(
                    verdict_of(&equiv, &verdicts, Fault::output(node, pol)).is_redundant(),
                    "{node:?} {pol:?}"
                );
            }
        }
        assert_eq!(stats.unproven, 0);
        assert!(!verdict_of(&equiv, &verdicts, Fault::output(a, StuckAt::Zero)).is_redundant());
    }

    #[test]
    fn budget_exhaustion_reports_unproven_not_a_verdict() {
        // A 4-bit ripple comparator cone with a 1-node budget: nothing can
        // be proven, nothing may be claimed.
        let ckt = protest_circuits::c17();
        let universe = FaultUniverse::all(&ckt);
        let equiv = collapse_universe(&ckt, &universe);
        let probs = vec![0.5; ckt.num_inputs()];
        let (verdicts, stats) = prove_classes(&ckt, &equiv, &probs, 1, 1);
        assert!(verdicts.iter().all(|v| matches!(v, Verdict::Unproven)));
        assert_eq!(stats.unproven, stats.classes);
        assert_eq!(stats.budget_exceeded, stats.bdd_calls);
    }

    #[test]
    fn exact_probabilities_match_the_exhaustive_miter() {
        let ckt = protest_circuits::c17();
        let universe = FaultUniverse::all(&ckt);
        let equiv = collapse_universe(&ckt, &universe);
        let probs = vec![0.5; ckt.num_inputs()];
        let (verdicts, stats) = prove_classes(&ckt, &equiv, &probs, 100_000, 1);
        assert_eq!(stats.redundant, 0, "c17 is fully testable");
        let iprobs = crate::InputProbs::uniform(ckt.num_inputs());
        for (ci, v) in verdicts.iter().enumerate() {
            let Verdict::Testable { p_exact } = v else {
                panic!("class {ci} unresolved: {v:?}");
            };
            let rep = equiv.representatives()[ci];
            let reference = crate::detect::exact_detection_probability(&ckt, rep, &iprobs).unwrap();
            assert!(
                (p_exact - reference).abs() < 1e-12,
                "{rep:?}: bdd {p_exact} vs exhaustive {reference}"
            );
        }
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let ckt = protest_circuits::sn7485();
        let universe = FaultUniverse::all(&ckt);
        let equiv = collapse_universe(&ckt, &universe);
        let probs = vec![0.5; ckt.num_inputs()];
        let (serial, s1) = prove_classes(&ckt, &equiv, &probs, 100_000, 1);
        let (parallel, s4) = prove_classes(&ckt, &equiv, &probs, 100_000, 4);
        assert_eq!(serial, parallel);
        assert_eq!(s1, s4);
    }
}
