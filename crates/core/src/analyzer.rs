//! The analysis facade: one-stop PROTEST runs.

use protest_netlist::{Circuit, NodeId};
use protest_sim::{collapse_universe, dominance_collapse, Fault, FaultUniverse};

use std::sync::{Arc, OnceLock};

use crate::aig::Aig;
use crate::cancel::CancelToken;
use crate::error::CoreError;
use crate::exec::Exec;
use crate::observe::{Observability, ObservabilityEngine};
use crate::params::{AnalyzerParams, FaultCollapse, InputProbs};
use crate::session::AnalysisSession;
use crate::sigprob::SignalProbEstimator;
use crate::testlen::{self, TestLength};

/// Detection estimate for one fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEstimate {
    /// The fault.
    pub fault: Fault,
    /// Probability the fault site carries the error-exciting value.
    pub activation: f64,
    /// Probability the site is observed at an output (signal-flow model).
    pub observability: f64,
    /// Estimated detection probability (`P_PROT` in the paper).
    pub detection: f64,
}

/// The PROTEST analyzer: builds all probability-independent structure once
/// (AIG, joining points, fault universe), then evaluates any input
/// probability vector cheaply — which is exactly what the optimizer needs.
#[derive(Debug)]
pub struct Analyzer<'c> {
    circuit: &'c Circuit,
    params: AnalyzerParams,
    /// Monolithic-AIG estimator, built on first use (sessions force it;
    /// partitioned one-shot runs never do).
    estimator: OnceLock<SignalProbEstimator>,
    faults: Vec<Fault>,
    /// Expanded member count per analyzed class, aligned with `faults`.
    class_sizes: Vec<u32>,
    uncollapsed: usize,
    /// Fault classes dropped by the redundancy prover
    /// (`params.prune_redundant`).
    pruned_classes: usize,
    /// Expanded faults inside the pruned classes.
    pruned_faults: usize,
    exec: Exec,
    /// The reverse-sweep structure (levelization, fanouts, wavefront
    /// bounds), built on the first session and shared by all of them.
    obs_engine: OnceLock<Arc<ObservabilityEngine<'c>>>,
    /// Fault→dependent-nodes interval sets for the sessions' incremental
    /// fault query cache, built on first use and shared by every session.
    fault_deps: OnceLock<Arc<crate::detect::FaultDeps>>,
    /// For each AIG node, the circuit nodes carrying its probability
    /// (inverse of `Aig::lit_of`, constants excluded) — translates the
    /// sessions' AIG-level dirty regions into circuit-level node sets.
    circ_of_aig: OnceLock<CircOfAig>,
    /// The connected-component decomposition one-shot runs use (`None`
    /// when the circuit is monolithic or partitioning is off), built on
    /// first use. See [`crate::partition`].
    partitioning: OnceLock<Option<crate::partition::Partitioning>>,
}

impl<'c> Analyzer<'c> {
    /// Creates an analyzer with default parameters over the collapsed fault
    /// universe.
    pub fn new(circuit: &'c Circuit) -> Self {
        Self::with_params(circuit, AnalyzerParams::default())
    }

    /// Creates an analyzer with explicit parameters.
    ///
    /// The fault list is built as a pipeline: equivalence collapsing,
    /// then (with `params.prune_redundant`) pruning of proven-redundant
    /// classes, then (with [`FaultCollapse::Dominance`]) dominance
    /// merging of the survivors. Pruning must precede dominance merging:
    /// a dominance class mixes faults with *different* test sets, so only
    /// equivalence classes — where one proof covers every member — may be
    /// dropped wholesale.
    pub fn with_params(circuit: &'c Circuit, params: AnalyzerParams) -> Self {
        let universe = FaultUniverse::all(circuit);
        let uncollapsed = universe.len();
        let mut collapsed = collapse_universe(circuit, &universe);
        let mut pruned_classes = 0;
        let mut pruned_faults = 0;
        if params.prune_redundant {
            let probs = vec![0.5; circuit.num_inputs()];
            let (verdicts, _) = crate::staticanalysis::redundancy::prove_classes(
                circuit,
                &collapsed,
                &probs,
                params.redundancy_budget,
                params.num_threads,
            );
            let keep: Vec<bool> = verdicts.iter().map(|v| !v.is_redundant()).collect();
            pruned_classes = keep.iter().filter(|&&k| !k).count();
            pruned_faults = collapsed
                .classes()
                .iter()
                .zip(&keep)
                .filter(|(_, &k)| !k)
                .map(|(c, _)| c.len())
                .sum();
            if pruned_classes > 0 {
                collapsed = collapsed.filtered(&keep);
            }
        }
        if params.collapse == FaultCollapse::Dominance {
            collapsed = dominance_collapse(circuit, &collapsed);
        }
        let class_sizes = collapsed.classes().iter().map(|c| c.len() as u32).collect();
        let exec = Exec::new(params.num_threads);
        Analyzer {
            circuit,
            params,
            estimator: OnceLock::new(),
            faults: collapsed.representatives().to_vec(),
            class_sizes,
            uncollapsed,
            pruned_classes,
            pruned_faults,
            exec,
            obs_engine: OnceLock::new(),
            fault_deps: OnceLock::new(),
            circ_of_aig: OnceLock::new(),
            partitioning: OnceLock::new(),
        }
    }

    /// The resolved thread count this analyzer's parallel passes run on
    /// (1 = everything serial).
    pub fn num_threads(&self) -> usize {
        self.exec.threads()
    }

    /// The circuit under analysis.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The analysis parameters.
    pub fn params(&self) -> &AnalyzerParams {
        &self.params
    }

    /// The collapsed fault list the analyzer estimates (representatives).
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Expanded member count of each analyzed class, aligned with
    /// [`faults`](Self::faults) — the weights for class-expanded test
    /// lengths.
    pub fn class_sizes(&self) -> &[u32] {
        &self.class_sizes
    }

    /// Size of the uncollapsed fault universe.
    pub fn uncollapsed_fault_count(&self) -> usize {
        self.uncollapsed
    }

    /// Fault classes dropped by the redundancy prover (0 unless
    /// [`AnalyzerParams::prune_redundant`] was set).
    pub fn pruned_class_count(&self) -> usize {
        self.pruned_classes
    }

    /// Expanded faults inside the pruned classes.
    pub fn pruned_fault_count(&self) -> usize {
        self.pruned_faults
    }

    /// Opens an incremental [`AnalysisSession`] at the given input
    /// probabilities — the API the optimizer hot loop uses: mutate one
    /// input at a time and re-estimate in O(dirty cone) instead of
    /// O(circuit).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProbsLength`] if `probs` does not match the
    /// circuit's input count.
    pub fn session(&self, probs: &InputProbs) -> Result<AnalysisSession<'_, 'c>, CoreError> {
        AnalysisSession::new(self, probs, CancelToken::never())
    }

    /// Like [`session`](Self::session) but armed with a
    /// [`CancelToken`]: the construction pass and every subsequent
    /// mutation and `try_*` query poll the token and fail fast with
    /// [`CoreError::Cancelled`] once it fires.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProbsLength`] on a mismatched input count and
    /// [`CoreError::Cancelled`] when the token fires during the initial
    /// full estimation pass.
    pub fn session_with_cancel(
        &self,
        probs: &InputProbs,
        cancel: CancelToken,
    ) -> Result<AnalysisSession<'_, 'c>, CoreError> {
        AnalysisSession::new(self, probs, cancel)
    }

    /// Runs the full analysis for one input probability vector.
    ///
    /// This is a thin one-shot wrapper: it opens an [`AnalysisSession`]
    /// (see [`session`](Self::session)) and immediately finishes it into an
    /// owned [`CircuitAnalysis`]. Callers that evaluate many probability
    /// vectors should keep the session instead.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProbsLength`] if `probs` does not match the
    /// circuit's input count.
    pub fn run(&self, probs: &InputProbs) -> Result<CircuitAnalysis, CoreError> {
        self.run_with_cancel(probs, CancelToken::never())
    }

    /// Cancellable form of [`run`](Self::run): the whole one-shot pass —
    /// estimation, observability, fault estimates — polls `cancel` and
    /// errors with [`CoreError::Cancelled`] once it fires.
    pub fn run_with_cancel(
        &self,
        probs: &InputProbs,
        cancel: CancelToken,
    ) -> Result<CircuitAnalysis, CoreError> {
        if let Some(plan) = self.partitioning() {
            return crate::partition::run_partitioned(self, plan, probs, &cancel);
        }
        self.session_with_cancel(probs, cancel)?.try_into_analysis()
    }

    /// Number of independent partitions one-shot runs decompose the
    /// circuit into (1 = the monolithic path; see [`crate::partition`]).
    pub fn partition_count(&self) -> usize {
        self.partitioning().map_or(1, |p| p.len())
    }

    /// Flat-storage bytes held by the partition sub-circuits (0 on the
    /// monolithic path) — a memory-footprint counter for `stats` reports.
    pub fn partition_storage_bytes(&self) -> usize {
        self.partitioning().map_or(0, |p| p.storage_bytes())
    }

    /// Number of distinct sub-circuit structures among the partitions
    /// (1 on the monolithic path). Replicated-lane netlists collapse to a
    /// few classes; the partitioned pass builds its probability-independent
    /// machinery once per class.
    pub fn partition_class_count(&self) -> usize {
        self.partitioning().map_or(1, |p| p.num_classes())
    }

    /// The cached partitioning, built on first use (crate-internal).
    pub(crate) fn partitioning(&self) -> Option<&crate::partition::Partitioning> {
        self.partitioning
            .get_or_init(|| crate::partition::plan(self.circuit, &self.params))
            .as_ref()
    }

    /// The shared signal-probability estimator (crate-internal: sessions
    /// drive its per-node kernel directly). Built lazily on first use: the
    /// partitioned one-shot path analyzes per-component estimators instead
    /// and never pays for the monolithic one.
    pub(crate) fn estimator(&self) -> &SignalProbEstimator {
        self.estimator
            .get_or_init(|| SignalProbEstimator::new(Aig::from_circuit(self.circuit), &self.params))
    }

    /// The execution context parallel passes run on (crate-internal).
    pub(crate) fn exec(&self) -> &Exec {
        &self.exec
    }

    /// The shared observability engine (crate-internal), built when the
    /// first session over this analyzer opens — every session and clone
    /// reuses one levelization and fanout map.
    pub(crate) fn obs_engine(&self) -> &Arc<ObservabilityEngine<'c>> {
        self.obs_engine
            .get_or_init(|| Arc::new(ObservabilityEngine::new(self.circuit, &self.params)))
    }

    /// The shared fault→dependent-nodes map (crate-internal), built on the
    /// first incremental fault refresh of any session over this analyzer.
    pub(crate) fn fault_deps(&self) -> Arc<crate::detect::FaultDeps> {
        self.fault_deps
            .get_or_init(|| Arc::new(crate::detect::build_fault_deps(self)))
            .clone()
    }

    /// Heap bytes of the fault→dependency interval store (forces its
    /// construction) — a memory-footprint counter for `stats` reports. The
    /// interval encoding keeps this O(Σ per-fault interval counts) instead
    /// of the `faults × nodes / 8` a dense bitset matrix would cost.
    pub fn fault_deps_bytes(&self) -> usize {
        self.fault_deps().bytes()
    }

    /// The AIG→circuit probability-carrier map (crate-internal), shared by
    /// every incremental query consumer.
    pub(crate) fn circ_of_aig(&self) -> &CircOfAig {
        self.circ_of_aig.get_or_init(|| {
            let aig = self.estimator().aig();
            let n = aig.len();
            let mut off = vec![0u32; n + 1];
            for c in 0..self.circuit.num_nodes() {
                let lit = aig.lit_of(NodeId::from_index(c));
                if !lit.is_const() {
                    off[lit.node().index() + 1] += 1;
                }
            }
            for i in 0..n {
                off[i + 1] += off[i];
            }
            let mut dat = vec![0u32; off[n] as usize];
            let mut cursor = off.clone();
            for c in 0..self.circuit.num_nodes() {
                let lit = aig.lit_of(NodeId::from_index(c));
                if !lit.is_const() {
                    let a = lit.node().index();
                    dat[cursor[a] as usize] = c as u32;
                    cursor[a] += 1;
                }
            }
            CircOfAig { off, dat }
        })
    }
}

/// Inverse of `Aig::lit_of` in CSR form: for each AIG node, the circuit
/// nodes whose probability it carries (constants excluded). Flat storage —
/// two contiguous arrays instead of one allocation per AIG node.
#[derive(Debug)]
pub(crate) struct CircOfAig {
    off: Vec<u32>,
    dat: Vec<u32>,
}

impl CircOfAig {
    /// Circuit nodes carried by AIG node `i`, in ascending order.
    pub(crate) fn of(&self, i: usize) -> &[u32] {
        &self.dat[self.off[i] as usize..self.off[i + 1] as usize]
    }
}

/// The result of one [`Analyzer::run`]: per-node signal probabilities,
/// observabilities and per-fault detection estimates.
#[derive(Debug)]
pub struct CircuitAnalysis {
    node_probs: Vec<f64>,
    obs: Observability,
    estimates: Vec<FaultEstimate>,
}

impl CircuitAnalysis {
    /// Assembles an analysis from a finished session's parts.
    pub(crate) fn from_parts(
        node_probs: Vec<f64>,
        obs: Observability,
        estimates: Vec<FaultEstimate>,
    ) -> Self {
        CircuitAnalysis {
            node_probs,
            obs,
            estimates,
        }
    }

    /// Estimated `P(node = 1)`.
    pub fn signal_probability(&self, id: NodeId) -> f64 {
        self.node_probs[id.index()]
    }

    /// All node signal probabilities, indexable by node index.
    pub fn signal_probabilities(&self) -> &[f64] {
        &self.node_probs
    }

    /// Estimated observability `s(x)` of a node output.
    pub fn node_observability(&self, id: NodeId) -> f64 {
        self.obs.node(id)
    }

    /// The full observability result (stem and pin values) — the
    /// from-scratch reference the incremental session sweeps are
    /// differentially tested against.
    pub fn observabilities(&self) -> &Observability {
        &self.obs
    }

    /// Per-fault detection estimates, aligned with
    /// [`Analyzer::faults`].
    pub fn fault_estimates(&self) -> &[FaultEstimate] {
        &self.estimates
    }

    /// Just the detection probabilities (`P_PROT`), aligned with
    /// [`Analyzer::faults`].
    pub fn detection_probabilities(&self) -> Vec<f64> {
        self.estimates.iter().map(|e| e.detection).collect()
    }

    /// The `k` least testable faults, hardest first.
    pub fn hardest_faults(&self, k: usize) -> Vec<FaultEstimate> {
        let mut sorted = self.estimates.clone();
        sorted.sort_by(|a, b| {
            a.detection
                .partial_cmp(&b.detection)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        sorted.truncate(k);
        sorted
    }

    /// Test length to detect the top `d`-fraction of faults with
    /// probability `e` (paper Tables 2/3/5).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `d`/`e` (see
    /// [`testlen::required_test_length_fraction`]).
    pub fn required_test_length(&self, d: f64, e: f64) -> Option<TestLength> {
        testlen::required_test_length_fraction(&self.detection_probabilities(), d, e)
    }

    /// Class-expanded test length: like
    /// [`required_test_length`](Self::required_test_length), but each
    /// analyzed class contributes its product term once per member
    /// (weights from [`Analyzer::class_sizes`]), so `N(d, e)` refers to a
    /// fraction of the *full* fault universe rather than of the
    /// representatives.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `d`/`e` or a weight-vector length mismatch
    /// (see [`testlen::required_test_length_fraction_weighted`]).
    pub fn required_test_length_expanded(
        &self,
        class_sizes: &[u32],
        d: f64,
        e: f64,
    ) -> Option<TestLength> {
        testlen::required_test_length_fraction_weighted(
            &self.detection_probabilities(),
            class_sizes,
            d,
            e,
        )
    }
}

#[cfg(test)]
mod tests {
    use protest_circuits::c17;
    use protest_netlist::CircuitBuilder;

    use super::*;

    #[test]
    fn analyzer_runs_on_c17() {
        let ckt = c17();
        let analyzer = Analyzer::new(&ckt);
        let analysis = analyzer.run(&InputProbs::uniform(5)).unwrap();
        assert_eq!(analysis.fault_estimates().len(), analyzer.faults().len());
        assert!(analyzer.uncollapsed_fault_count() >= analyzer.faults().len());
        for est in analysis.fault_estimates() {
            assert!((0.0..=1.0).contains(&est.detection));
            assert!(est.detection <= est.activation + 1e-12);
        }
        // c17 is highly random-testable: a short test suffices.
        let tl = analysis.required_test_length(1.0, 0.98).unwrap();
        assert!(tl.patterns < 200, "N = {}", tl.patterns);
    }

    #[test]
    fn rejects_wrong_prob_length() {
        let ckt = c17();
        let analyzer = Analyzer::new(&ckt);
        assert!(matches!(
            analyzer.run(&InputProbs::uniform(4)),
            Err(CoreError::ProbsLength { .. })
        ));
    }

    #[test]
    fn lut_components_flow_through_the_whole_pipeline() {
        // A majority LUT with reconvergent, shared inputs: the AIG
        // decomposition, estimator, observability and detection paths must
        // all handle truth-table components, and on this small circuit the
        // estimates must match the exact values closely.
        use protest_netlist::TruthTable;
        let mut b = CircuitBuilder::new("lutmaj");
        let xs = b.input_bus("x", 3);
        let t = b.add_table(TruthTable::from_fn(3, |m| m.count_ones() >= 2).unwrap());
        let maj = b.lut(t, &xs);
        let z = b.and2(maj, xs[0]);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let analyzer = Analyzer::new(&ckt);
        let probs = InputProbs::from_slice(&[0.5, 0.3, 0.8]).unwrap();
        let analysis = analyzer.run(&probs).unwrap();
        let exact = crate::sigprob::exhaustive_signal_probs(&ckt, &probs).unwrap();
        // z = maj(x) ∧ x0. The LUT's Shannon decomposition creates nested
        // reconvergence that bounded conditioning captures only partially
        // (conditional re-propagation uses the plain product rule, as the
        // paper's formula does), so per-node drift of ~0.1 is expected.
        assert!(
            (analysis.signal_probability(z) - exact[z.index()]).abs() < 0.15,
            "estimate {} vs exact {}",
            analysis.signal_probability(z),
            exact[z.index()]
        );
        for est in analysis.fault_estimates() {
            let miter =
                crate::detect::exact_detection_probability(&ckt, est.fault, &probs).unwrap();
            assert!(
                (est.detection - miter).abs() < 0.3,
                "{:?}: est {} vs exact {miter}",
                est.fault,
                est.detection
            );
        }
    }

    #[test]
    fn hardest_faults_sorted() {
        let mut b = CircuitBuilder::new("h");
        let xs = b.input_bus("x", 6);
        let t = b.and_tree(&xs); // deep AND: sa0 at the root is hard
        b.output(t, "z");
        let ckt = b.finish().unwrap();
        let analyzer = Analyzer::new(&ckt);
        let analysis = analyzer.run(&InputProbs::uniform(6)).unwrap();
        let hardest = analysis.hardest_faults(3);
        assert_eq!(hardest.len(), 3);
        assert!(hardest[0].detection <= hardest[1].detection);
        assert!(hardest[1].detection <= hardest[2].detection);
        // The hardest faults of an AND tree need all inputs 1: p = 2^-6.
        assert!((hardest[0].detection - 1.0 / 64.0).abs() < 1e-9);
    }
}
