//! AND/inverter graph (AIG) view of a circuit.
//!
//! The paper presents its estimator over circuits of inverters and 2-input
//! ANDs ("to simplify the notation […] only inverters and 2-input ANDs are
//! used") while accepting arbitrary components. We make the same move
//! operational: every circuit is decomposed into a structurally-hashed AIG,
//! the estimator runs on the AIG, and a node map carries probabilities back
//! to the original netlist. Inverters are free (complement edges), so the
//! estimator's case analysis reduces to exactly the paper's four cases.

use std::collections::HashMap;

use protest_netlist::{Circuit, GateKind, Levels, NodeId, TruthTable};

/// Index of an AIG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigNodeId(u32);

impl AigNodeId {
    /// Raw index (0 is the constant-TRUE node).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index (crate-internal; ids are only
    /// meaningful for the AIG that allocated them).
    pub(crate) fn from_index(i: usize) -> Self {
        AigNodeId(i as u32)
    }
}

/// A literal: an AIG node with an optional complement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigLit(u32);

impl AigLit {
    /// The constant TRUE literal.
    pub const TRUE: AigLit = AigLit(0);
    /// The constant FALSE literal.
    pub const FALSE: AigLit = AigLit(1);

    fn new(node: AigNodeId, complement: bool) -> Self {
        AigLit(node.0 << 1 | u32::from(complement))
    }

    /// The underlying node.
    pub fn node(self) -> AigNodeId {
        AigNodeId(self.0 >> 1)
    }

    /// Whether the literal is complemented.
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal (named after the AIG-literature operation;
    /// the `Not` trait is not implemented so call sites stay explicit).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }

    /// Whether this is one of the constant literals.
    pub fn is_const(self) -> bool {
        self.node().0 == 0
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AigNode {
    /// The constant TRUE node (always node 0).
    ConstTrue,
    /// Primary input (position in the circuit's input list).
    Input(u32),
    /// 2-input AND of two literals.
    And(AigLit, AigLit),
}

/// A structurally hashed AND/inverter graph tied to a source [`Circuit`].
#[derive(Debug, Clone)]
pub struct Aig {
    nodes: Vec<AigNode>,
    /// For each circuit node, the literal computing its function.
    node_lit: Vec<AigLit>,
    strash: HashMap<(AigLit, AigLit), AigNodeId>,
    num_inputs: usize,
}

impl Aig {
    /// Decomposes a circuit into an AIG.
    ///
    /// Nodes are created in topological order, so an `AigNodeId`'s fanins
    /// always have smaller indices — estimator passes iterate `1..len`.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut aig = Aig {
            nodes: vec![AigNode::ConstTrue],
            node_lit: vec![AigLit::FALSE; circuit.num_nodes()],
            strash: HashMap::new(),
            num_inputs: circuit.num_inputs(),
        };
        // Inputs get fixed node slots 1..=n in declaration order.
        let mut input_lits = Vec::with_capacity(circuit.num_inputs());
        for pos in 0..circuit.num_inputs() {
            let id = AigNodeId(aig.nodes.len() as u32);
            aig.nodes.push(AigNode::Input(pos as u32));
            input_lits.push(AigLit::new(id, false));
        }
        let levels = Levels::new(circuit);
        for &cid in levels.order() {
            let node = circuit.node(cid);
            let fanins: Vec<AigLit> = node
                .fanins()
                .iter()
                .map(|&f| aig.node_lit[f.index()])
                .collect();
            let lit = match node.kind() {
                GateKind::Input => {
                    let pos = circuit
                        .input_position(cid)
                        .expect("input node missing from input list");
                    input_lits[pos]
                }
                GateKind::Const(v) => {
                    if v {
                        AigLit::TRUE
                    } else {
                        AigLit::FALSE
                    }
                }
                GateKind::Buf => fanins[0],
                GateKind::Not => fanins[0].not(),
                GateKind::And => aig.and_many(&fanins),
                GateKind::Nand => aig.and_many(&fanins).not(),
                GateKind::Or => aig.or_many(&fanins),
                GateKind::Nor => aig.or_many(&fanins).not(),
                GateKind::Xor => aig.xor_many(&fanins),
                GateKind::Xnor => aig.xor_many(&fanins).not(),
                GateKind::Lut(lid) => aig.lut(circuit.lut(lid), &fanins),
            };
            aig.node_lit[cid.index()] = lit;
        }
        aig
    }

    /// Number of AIG nodes (constant + inputs + ANDs).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the AIG is empty (never true: the constant node exists).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of AND nodes.
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, AigNode::And(..)))
            .count()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The literal computing a circuit node's function.
    pub fn lit_of(&self, circuit_node: NodeId) -> AigLit {
        self.node_lit[circuit_node.index()]
    }

    /// If the node is an AND, its two fanin literals.
    pub fn and_fanins(&self, id: AigNodeId) -> Option<(AigLit, AigLit)> {
        match self.nodes[id.index()] {
            AigNode::And(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// If the node is an input, its position in the circuit input list.
    pub fn input_position(&self, id: AigNodeId) -> Option<usize> {
        match self.nodes[id.index()] {
            AigNode::Input(pos) => Some(pos as usize),
            _ => None,
        }
    }

    /// The AIG node carrying primary input `pos`. Inputs occupy the fixed
    /// slots `1..=num_inputs` in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= num_inputs()`.
    pub fn input_node(&self, pos: usize) -> AigNodeId {
        assert!(pos < self.num_inputs, "input position out of range");
        let id = AigNodeId::from_index(pos + 1);
        debug_assert_eq!(self.input_position(id), Some(pos));
        id
    }

    fn mk_and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Constant folding and trivial cases.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == b.not() {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(a, b)) {
            return AigLit::new(id, false);
        }
        let id = AigNodeId(self.nodes.len() as u32);
        self.nodes.push(AigNode::And(a, b));
        self.strash.insert((a, b), id);
        AigLit::new(id, false)
    }

    fn and_many(&mut self, lits: &[AigLit]) -> AigLit {
        let mut acc = AigLit::TRUE;
        for &l in lits {
            acc = self.mk_and(acc, l);
        }
        acc
    }

    fn or_many(&mut self, lits: &[AigLit]) -> AigLit {
        let neg: Vec<AigLit> = lits.iter().map(|l| l.not()).collect();
        self.and_many(&neg).not()
    }

    fn xor2(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // a ⊕ b = ¬(¬(a·¬b) · ¬(¬a·b))
        let t1 = self.mk_and(a, b.not());
        let t2 = self.mk_and(a.not(), b);
        self.mk_and(t1.not(), t2.not()).not()
    }

    fn xor_many(&mut self, lits: &[AigLit]) -> AigLit {
        let mut acc = AigLit::FALSE;
        for &l in lits {
            acc = self.xor2(acc, l);
        }
        acc
    }

    /// Shannon expansion of a truth table over fanin literals.
    fn lut(&mut self, table: &TruthTable, fanins: &[AigLit]) -> AigLit {
        let n = table.num_inputs();
        assert_eq!(n, fanins.len());
        self.lut_rec(table, fanins, n, 0)
    }

    /// Expands on the highest variable first; `fixed` holds the minterm bits
    /// already decided for variables `var..n`.
    fn lut_rec(
        &mut self,
        table: &TruthTable,
        fanins: &[AigLit],
        var: usize,
        fixed: usize,
    ) -> AigLit {
        if var == 0 {
            return if table.bit(fixed) {
                AigLit::TRUE
            } else {
                AigLit::FALSE
            };
        }
        let v = var - 1;
        let f0 = self.lut_rec(table, fanins, v, fixed);
        let f1 = self.lut_rec(table, fanins, v, fixed | (1 << v));
        if f0 == f1 {
            return f0;
        }
        // ite(x, f1, f0) = ¬(¬(x·f1)·¬(¬x·f0))
        let x = fanins[v];
        let t1 = self.mk_and(x, f1);
        let t0 = self.mk_and(x.not(), f0);
        self.mk_and(t1.not(), t0.not()).not()
    }

    /// Evaluates a literal under a scalar input assignment (test helper;
    /// estimation never calls this).
    pub fn eval_lit(&self, lit: AigLit, inputs: &[bool]) -> bool {
        let mut values = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match *node {
                AigNode::ConstTrue => true,
                AigNode::Input(pos) => inputs[pos as usize],
                AigNode::And(a, b) => {
                    let va = values[a.node().index()] ^ a.is_complement();
                    let vb = values[b.node().index()] ^ b.is_complement();
                    va && vb
                }
            };
        }
        values[lit.node().index()] ^ lit.is_complement()
    }

    /// Fanout lists over AIG nodes: for each node, the AND nodes reading it.
    ///
    /// Stored as one contiguous CSR array (two allocations total) rather
    /// than a `Vec` per node — on a 100k-gate circuit the per-node-vector
    /// form costs hundreds of thousands of small allocations and scattered
    /// reads.
    pub(crate) fn fanout_map(&self) -> AigFanouts {
        let n = self.nodes.len();
        let mut off = vec![0u32; n + 1];
        for node in &self.nodes {
            if let AigNode::And(a, b) = *node {
                off[a.node().index() + 1] += 1;
                if b.node() != a.node() {
                    off[b.node().index() + 1] += 1;
                }
            }
        }
        for i in 0..n {
            off[i + 1] += off[i];
        }
        let mut dat = vec![AigNodeId(0); off[n] as usize];
        let mut cursor = off.clone();
        for (i, node) in self.nodes.iter().enumerate() {
            if let AigNode::And(a, b) = *node {
                dat[cursor[a.node().index()] as usize] = AigNodeId(i as u32);
                cursor[a.node().index()] += 1;
                if b.node() != a.node() {
                    dat[cursor[b.node().index()] as usize] = AigNodeId(i as u32);
                    cursor[b.node().index()] += 1;
                }
            }
        }
        AigFanouts { off, dat }
    }
}

/// CSR fanout adjacency over AIG nodes (see [`Aig::fanout_map`]). Each
/// node's list is ascending in reader index, matching the order the old
/// per-node vectors were filled in.
#[derive(Debug, Clone)]
pub(crate) struct AigFanouts {
    /// `n + 1` offsets into `dat`.
    off: Vec<u32>,
    /// Concatenated reader lists.
    dat: Vec<AigNodeId>,
}

impl AigFanouts {
    /// The AND nodes reading node `i`.
    pub(crate) fn of(&self, i: usize) -> &[AigNodeId] {
        &self.dat[self.off[i] as usize..self.off[i + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use protest_netlist::CircuitBuilder;

    use super::*;

    #[test]
    fn gates_decompose_correctly() {
        let mut b = CircuitBuilder::new("g");
        let xs = b.input_bus("x", 3);
        let and3 = b.and(&xs);
        let or3 = b.or(&xs);
        let xor3 = b.xor_tree(&xs);
        let nand2 = b.nand2(xs[0], xs[1]);
        b.output(and3, "a");
        b.output(or3, "o");
        b.output(xor3, "x");
        b.output(nand2, "n");
        let ckt = b.finish().unwrap();
        let aig = Aig::from_circuit(&ckt);
        for mask in 0..8usize {
            let ins: Vec<bool> = (0..3).map(|i| (mask >> i) & 1 == 1).collect();
            let all = ins.iter().all(|&v| v);
            let any = ins.iter().any(|&v| v);
            let par = ins.iter().filter(|&&v| v).count() % 2 == 1;
            assert_eq!(aig.eval_lit(aig.lit_of(and3), &ins), all);
            assert_eq!(aig.eval_lit(aig.lit_of(or3), &ins), any);
            assert_eq!(aig.eval_lit(aig.lit_of(xor3), &ins), par);
            assert_eq!(aig.eval_lit(aig.lit_of(nand2), &ins), !(ins[0] && ins[1]));
        }
    }

    #[test]
    fn strashing_dedups() {
        let mut b = CircuitBuilder::new("d");
        let a = b.input("a");
        let c = b.input("c");
        let g1 = b.and2(a, c);
        let g2 = b.and2(c, a); // same function, swapped pins
        b.output(g1, "z1");
        b.output(g2, "z2");
        let ckt = b.finish().unwrap();
        let aig = Aig::from_circuit(&ckt);
        assert_eq!(aig.lit_of(g1), aig.lit_of(g2));
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn constant_folding() {
        let mut b = CircuitBuilder::new("k");
        let a = b.input("a");
        let na = b.not(a);
        let z = b.and2(a, na); // constant false
        let one = b.constant(true);
        let w = b.and2(a, one); // = a
        b.output(z, "z");
        b.output(w, "w");
        let ckt = b.finish().unwrap();
        let aig = Aig::from_circuit(&ckt);
        assert_eq!(aig.lit_of(z), AigLit::FALSE);
        assert_eq!(aig.lit_of(w), aig.lit_of(a));
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn lut_expansion_matches_table() {
        let mut b = CircuitBuilder::new("l");
        let xs = b.input_bus("x", 3);
        let t = b.add_table(TruthTable::from_fn(3, |m| m.count_ones() >= 2).unwrap());
        let z = b.lut(t, &xs);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let aig = Aig::from_circuit(&ckt);
        for mask in 0..8usize {
            let ins: Vec<bool> = (0..3).map(|i| (mask >> i) & 1 == 1).collect();
            assert_eq!(
                aig.eval_lit(aig.lit_of(z), &ins),
                mask.count_ones() >= 2,
                "mask={mask}"
            );
        }
    }

    #[test]
    fn xor_matches_on_larger_fanin() {
        let mut b = CircuitBuilder::new("x");
        let xs = b.input_bus("x", 4);
        let z = b.gate(GateKind::Xnor, &xs);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let aig = Aig::from_circuit(&ckt);
        for mask in 0..16usize {
            let ins: Vec<bool> = (0..4).map(|i| (mask >> i) & 1 == 1).collect();
            assert_eq!(
                aig.eval_lit(aig.lit_of(z), &ins),
                mask.count_ones() % 2 == 0
            );
        }
    }
}
