//! Warm [`AnalysisSession`] pools: the serving-stack checkout/re-sync
//! primitive.
//!
//! A long-running service answers many queries over one circuit. Opening a
//! fresh session per request pays a full forward estimate, a full reverse
//! observability sweep and a full per-fault pass every time — exactly the
//! work the incremental session exists to avoid. A [`SessionPool`] keeps
//! finished sessions *warm* instead:
//!
//! * [`checkout`](SessionPool::checkout) pops an idle warm session (or
//!   clones the pool's template on a cold start — engines and fault maps
//!   are `Arc`-shared, so a clone is proportional to per-node state only);
//! * the returned [`PooledSession`] derefs to the session; the request
//!   handler mutates and queries it freely;
//! * on drop the session is **re-synced** to the pool's base probabilities
//!   ([`AnalysisSession::resync`] — O(dirty cone) of whatever the request
//!   changed, free when the request never mutated) and pushed back idle.
//!
//! A request at the base point therefore costs only its incremental
//! queries, and a request at custom probabilities costs two cone-local
//! re-propagations (to the custom point, back to base) instead of three
//! full passes.
//!
//! The pool is `Sync`: checkout/return take a mutex around the idle vector
//! only, so concurrent request workers contend for nanoseconds, not for
//! analysis time. Counters ([`PoolStats`]) expose warm hits vs cold
//! clones and the live/idle census for a service's observability endpoint.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::analyzer::Analyzer;
use crate::cancel::CancelToken;
use crate::error::CoreError;
use crate::params::InputProbs;
use crate::session::AnalysisSession;

/// Work counters of a [`SessionPool`] (monotonic, except `idle`/`live`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Checkouts served by a warm idle session.
    pub warm_hits: u64,
    /// Checkouts that had to clone the template (cold starts).
    pub cold_clones: u64,
    /// Sessions currently checked out.
    pub live: u64,
    /// Sessions currently idle in the pool.
    pub idle: u64,
    /// Sessions dropped instead of returned: poisoned by a mid-refresh
    /// cancellation, explicitly [`discard`](PooledSession::discard)ed
    /// after a panic, or failed to re-sync to base.
    pub discarded: u64,
}

/// A pool of warm [`AnalysisSession`]s over one [`Analyzer`], all based at
/// one canonical input-probability vector (see the module docs).
#[derive(Debug)]
pub struct SessionPool<'a, 'c> {
    analyzer: &'a Analyzer<'c>,
    base: InputProbs,
    /// The warm prototype new sessions are cloned from (kept separate from
    /// `idle` so the pool can always grow without re-running the cold
    /// full-pass construction).
    template: AnalysisSession<'a, 'c>,
    idle: Mutex<Vec<AnalysisSession<'a, 'c>>>,
    warm_hits: AtomicU64,
    cold_clones: AtomicU64,
    live: AtomicU64,
    discarded: AtomicU64,
}

impl<'a, 'c> SessionPool<'a, 'c> {
    /// Creates a pool based at `base`. Pays one full session construction
    /// (the template every later checkout clones or re-syncs to).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProbsLength`] if `base` does not match the
    /// circuit's input count.
    pub fn new(analyzer: &'a Analyzer<'c>, base: InputProbs) -> Result<Self, CoreError> {
        let mut template = analyzer.session(&base)?;
        // Warm every query cache once so clones start fully warm: a
        // checked-out clone then pays only incremental refreshes.
        template.fault_detect_probs();
        Ok(SessionPool {
            analyzer,
            base,
            template,
            idle: Mutex::new(Vec::new()),
            warm_hits: AtomicU64::new(0),
            cold_clones: AtomicU64::new(0),
            live: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
        })
    }

    /// The analyzer the pooled sessions evaluate.
    pub fn analyzer(&self) -> &'a Analyzer<'c> {
        self.analyzer
    }

    /// The canonical base probabilities sessions are re-synced to.
    pub fn base_probs(&self) -> &InputProbs {
        &self.base
    }

    /// Pre-clones `n` idle sessions so the first `n` concurrent checkouts
    /// are warm hits.
    pub fn warm(&self, n: usize) {
        let mut fresh = Vec::with_capacity(n);
        for _ in 0..n {
            fresh.push(self.template.clone());
        }
        self.idle.lock().unwrap().append(&mut fresh);
    }

    /// Checks a session out. Warm when an idle session is available, else
    /// a clone of the template. The guard returns (and re-syncs) the
    /// session on drop.
    pub fn checkout(&self) -> PooledSession<'_, 'a, 'c> {
        let popped = self.idle.lock().unwrap().pop();
        let session = match popped {
            Some(s) => {
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
                s
            }
            None => {
                self.cold_clones.fetch_add(1, Ordering::Relaxed);
                self.template.clone()
            }
        };
        self.live.fetch_add(1, Ordering::Relaxed);
        PooledSession {
            pool: self,
            session: Some(session),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            cold_clones: self.cold_clones.load(Ordering::Relaxed),
            live: self.live.load(Ordering::Relaxed),
            idle: self.idle.lock().unwrap().len() as u64,
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }

    fn give_back(&self, mut session: AnalysisSession<'a, 'c>) {
        self.live.fetch_sub(1, Ordering::Relaxed);
        // A session poisoned by a mid-refresh cancellation has lost dirty
        // tracking — re-syncing it could return stale values to later
        // checkouts. Drop it; the next cold checkout clones the template.
        if session.is_poisoned() {
            self.discarded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Disarm any request-scoped token before re-syncing: a fired
        // deadline must not sabotage the return-to-base sweep or leak
        // into the next request that checks this session out.
        session.set_cancel(CancelToken::never());
        // Re-sync to base cannot otherwise fail: the base vector was
        // validated at construction and its entries are in range.
        if session.resync(&self.base).is_err() {
            self.discarded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.idle.lock().unwrap().push(session);
    }

    fn note_discarded(&self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
        self.discarded.fetch_add(1, Ordering::Relaxed);
    }
}

/// A checked-out session (see [`SessionPool::checkout`]); derefs to
/// [`AnalysisSession`] and re-syncs + returns it to the pool on drop.
#[derive(Debug)]
pub struct PooledSession<'p, 'a, 'c> {
    pool: &'p SessionPool<'a, 'c>,
    session: Option<AnalysisSession<'a, 'c>>,
}

impl<'a, 'c> Deref for PooledSession<'_, 'a, 'c> {
    type Target = AnalysisSession<'a, 'c>;

    fn deref(&self) -> &Self::Target {
        self.session.as_ref().expect("session present until drop")
    }
}

impl DerefMut for PooledSession<'_, '_, '_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.session.as_mut().expect("session present until drop")
    }
}

impl PooledSession<'_, '_, '_> {
    /// Drops the session instead of returning it to the pool — for
    /// callers that caught a panic or otherwise no longer trust the
    /// session's state. Counted in [`PoolStats::discarded`].
    pub fn discard(mut self) {
        self.session.take();
        self.pool.note_discarded();
    }
}

impl Drop for PooledSession<'_, '_, '_> {
    fn drop(&mut self) {
        if let Some(session) = self.session.take() {
            // Unwinding out of a request handler means the session was
            // abandoned mid-mutation; its caches can be arbitrarily
            // inconsistent, so never re-sync it back into circulation.
            if std::thread::panicking() {
                self.pool.note_discarded();
            } else {
                self.pool.give_back(session);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit() -> protest_netlist::Circuit {
        use protest_netlist::CircuitBuilder;
        let mut b = CircuitBuilder::new("pool");
        let xs = b.input_bus("x", 4);
        let t = b.and_tree(&xs);
        b.output(t, "z");
        b.finish().unwrap()
    }

    #[test]
    fn checkout_mutate_return_resyncs() {
        let ckt = circuit();
        let analyzer = Analyzer::new(&ckt);
        let pool = SessionPool::new(&analyzer, InputProbs::uniform(4)).unwrap();
        let base_detect: Vec<f64> = {
            let mut s = pool.checkout();
            s.fault_detect_probs().to_vec()
        };
        {
            let mut s = pool.checkout();
            s.set_input_prob(0, 0.9375).unwrap();
            assert_ne!(s.fault_detect_probs(), &base_detect[..]);
        }
        // The mutated session came back re-synced to base.
        let mut s = pool.checkout();
        assert_eq!(s.input_probs(), pool.base_probs().as_slice());
        assert_eq!(s.fault_detect_probs(), &base_detect[..]);
        let stats = pool.stats();
        assert_eq!(stats.warm_hits + stats.cold_clones, 3);
        assert_eq!(stats.live, 1);
    }

    #[test]
    fn warm_sessions_hit() {
        let ckt = circuit();
        let analyzer = Analyzer::new(&ckt);
        let pool = SessionPool::new(&analyzer, InputProbs::uniform(4)).unwrap();
        pool.warm(2);
        assert_eq!(pool.stats().idle, 2);
        let a = pool.checkout();
        let b = pool.checkout();
        let stats = pool.stats();
        assert_eq!(stats.warm_hits, 2);
        assert_eq!(stats.cold_clones, 0);
        assert_eq!(stats.live, 2);
        drop(a);
        drop(b);
        assert_eq!(pool.stats().idle, 2);
        // A third concurrent checkout would have been cold.
        let _c = pool.checkout();
        assert_eq!(pool.stats().warm_hits, 3);
    }

    #[test]
    fn pooled_results_match_fresh_sessions() {
        let ckt = circuit();
        let analyzer = Analyzer::new(&ckt);
        let pool = SessionPool::new(&analyzer, InputProbs::uniform(4)).unwrap();
        let probs = InputProbs::from_slice(&[0.25, 0.75, 0.5, 0.0625]).unwrap();
        let mut pooled = pool.checkout();
        pooled.set_all(probs.as_slice()).unwrap();
        let direct = analyzer.run(&probs).unwrap();
        let got: Vec<u64> = pooled
            .fault_detect_probs()
            .iter()
            .map(|p| p.to_bits())
            .collect();
        let want: Vec<u64> = direct
            .detection_probabilities()
            .iter()
            .map(|p| p.to_bits())
            .collect();
        assert_eq!(got, want);
    }
}
