//! Cooperative cancellation for long-running analyses.
//!
//! A [`CancelToken`] is a cheaply cloneable handle carrying a shared
//! cancel flag and an optional deadline. The analysis hot loops — the
//! estimator's rank sweeps, the observability wavefronts, the per-fault
//! detection loop, the hill climber's trial moves and the BDD prover's
//! per-class budget loop — poll the token at rank/chunk boundaries and
//! bail out with [`CoreError::Cancelled`] within one check interval of
//! the token firing, instead of running a result to completion for
//! nobody.
//!
//! The default token is *disarmed*: it holds no allocation and every
//! poll is a single `Option` discriminant test, so analyses that never
//! cancel pay nothing. Polls never change the math — a pass that runs
//! to completion produces bit-identical results whether or not a token
//! was armed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::CoreError;

/// Shared state of an armed token.
#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancellation handle (see the module docs).
///
/// Clones share one flag: cancelling any clone cancels them all. The
/// [`Default`] token is disarmed and never fires.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never fires (the default); polls are free.
    pub fn never() -> Self {
        CancelToken { inner: None }
    }

    /// An armed token with no deadline; fires only via
    /// [`cancel`](Self::cancel).
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// An armed token that fires once `deadline` passes (or earlier via
    /// [`cancel`](Self::cancel)).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// An armed token firing `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Whether this token can ever fire.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Requests cancellation; a no-op on a disarmed token.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the token has fired (flag set, or deadline passed).
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.flag.load(Ordering::Relaxed)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// Errors with [`CoreError::Cancelled`] once the token has fired.
    pub fn check(&self) -> Result<(), CoreError> {
        if self.is_cancelled() {
            Err(CoreError::Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_token_never_fires() {
        let t = CancelToken::never();
        assert!(!t.is_armed());
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
        assert!(matches!(u.check(), Err(CoreError::Cancelled)));
    }

    #[test]
    fn deadline_fires_after_elapsing() {
        let t = CancelToken::after(Duration::from_millis(10));
        assert!(t.is_armed());
        let start = Instant::now();
        while !t.is_cancelled() {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "deadline never fired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(t.check().is_err());
    }
}
