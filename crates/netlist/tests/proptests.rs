//! Property-based tests of the netlist kernel: parser round-trips,
//! levelization invariants, joining-point symmetry.

use proptest::prelude::*;
use protest_netlist::analyze::{Fanouts, JoiningPoints};
use protest_netlist::{
    insert_test_point, parse_bench, parse_blif, parse_pdl, to_bench, to_blif, to_pdl, Circuit,
    CircuitBuilder, GateKind, InsertedPoint, Levels, NodeId, TestPointKind, TestPointSpec,
    TruthTable,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded random circuit built directly here (keeps this crate independent
/// of `protest-circuits`, which depends on us).
fn random_circuit(seed: u64, inputs: usize, gates: usize) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(format!("r{seed}"));
    let mut pool = b.input_bus("x", inputs);
    for _ in 0..gates {
        let kind = match rng.gen_range(0..6u32) {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Nand,
            3 => GateKind::Nor,
            4 => GateKind::Xor,
            _ => GateKind::Not,
        };
        let arity = if kind == GateKind::Not { 1 } else { 2 };
        let fanins: Vec<NodeId> = (0..arity)
            .map(|_| pool[rng.gen_range(0..pool.len())])
            .collect();
        pool.push(b.gate(kind, &fanins));
    }
    let out = *pool.last().expect("nonempty pool");
    b.output(out, "z");
    b.finish().expect("valid construction")
}

/// Like [`random_circuit`], but with the adversarial naming the writers
/// must survive: some gates carry explicit `n<j>` names (the shape every
/// circuit parsed back from a synthetic-name `.bench` file has, where they
/// can collide with the writer's labels for *unnamed* nodes), and the odd
/// constant node (exercising the PDL `const0()`/`const1()` form).
fn random_named_circuit(seed: u64, inputs: usize, gates: usize) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut ckt = random_circuit(seed, inputs, gates);
    // Rebuild with extra names/constants via the builder for validation.
    let mut b = CircuitBuilder::new(ckt.name().to_string());
    let mut map = Vec::with_capacity(ckt.num_nodes());
    for (id, node) in ckt.iter() {
        let new_id = match node.kind() {
            GateKind::Input => b.input(node.name().unwrap().to_string()),
            kind => {
                let fanins: Vec<NodeId> = node.fanins().iter().map(|&f| map[f.index()]).collect();
                let g = b.gate(kind, &fanins);
                match rng.gen_range(0..8u32) {
                    // Adversarial: an explicit name in the synthetic `n<j>`
                    // namespace, usually pointing at a *different* index.
                    0..=1 => b.name(g, format!("n{}", rng.gen_range(0..2 * gates))),
                    // ISCAS-style purely numeric name: legal in `.bench`,
                    // representable in PDL only via synthetic fallback.
                    2 => b.name(g, format!("{}", rng.gen_range(100..100 + 2 * gates))),
                    _ => {}
                }
                g
            }
        };
        map.push(new_id);
        let _ = id;
    }
    if rng.gen_range(0..3u32) == 0 {
        let k = b.constant(rng.gen_range(0..2u32) == 1);
        let z = *map.last().unwrap();
        let g = b.xor2(z, k);
        b.output(g, "zk");
    } else {
        b.output(*map.last().unwrap(), "z");
    }
    // Name collisions (two gates drawing the same n<j>) are rare but
    // possible; fall back to the unnamed circuit in that case.
    if let Ok(c) = b.finish() {
        ckt = c;
    }
    ckt
}

/// Rebuilds `ckt` with a couple of 3-input truth-table components bolted
/// on (one fed to a new output) — exercising the BLIF writer's lossless
/// LUT path and its gate-shaped-table normalization.
fn sprinkle_luts(ckt: &Circuit, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1a7);
    let mut b = CircuitBuilder::new(ckt.name().to_string());
    let mut map = Vec::with_capacity(ckt.num_nodes());
    for (_, node) in ckt.iter() {
        let new_id = match node.kind() {
            GateKind::Input => b.input(node.name().unwrap().to_string()),
            kind => {
                let fanins: Vec<NodeId> = node.fanins().iter().map(|&f| map[f.index()]).collect();
                let g = b.gate(kind, &fanins);
                if let Some(n) = node.name() {
                    b.name(g, n.to_string());
                }
                g
            }
        };
        map.push(new_id);
    }
    for &o in ckt.outputs() {
        b.output_unnamed(map[o.index()]);
    }
    let mask = rng.gen_range(0..256u64);
    let table = b.add_table(TruthTable::from_fn(3, |m| (mask >> m) & 1 == 1).unwrap());
    let picks: Vec<NodeId> = (0..3).map(|_| map[rng.gen_range(0..map.len())]).collect();
    let lut = b.lut(table, &picks);
    b.output_unnamed(lut);
    b.finish().expect("sprinkled circuit stays valid")
}

/// Applies 1–4 random test points (all kinds) to a circuit.
fn insert_random_points(ckt: &Circuit, seed: u64) -> (Circuit, Vec<InsertedPoint>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let count = rng.gen_range(1..5usize);
    let mut current = ckt.clone();
    let mut points = Vec::new();
    for _ in 0..count {
        let candidates: Vec<NodeId> = current
            .iter()
            .filter(|(_, n)| !matches!(n.kind(), GateKind::Const(_)))
            .map(|(id, _)| id)
            .collect();
        let node = candidates[rng.gen_range(0..candidates.len())];
        let kind = match rng.gen_range(0..3u32) {
            0 => TestPointKind::Observe,
            1 => TestPointKind::ControlZero,
            _ => TestPointKind::ControlOne,
        };
        let (next, point) = insert_test_point(&current, TestPointSpec { node, kind })
            .expect("insertion on a non-constant node succeeds");
        current = next;
        points.push(point);
    }
    (current, points)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bench_roundtrip_preserves_structure(seed in 0u64..10_000) {
        let ckt = random_circuit(seed, 5, 25);
        let text = to_bench(&ckt);
        let back = parse_bench(ckt.name(), &text).unwrap();
        prop_assert_eq!(back.num_inputs(), ckt.num_inputs());
        prop_assert_eq!(back.num_outputs(), ckt.num_outputs());
        prop_assert_eq!(back.num_gates(), ckt.num_gates());
        // Round-trip again: the second serialization must be stable.
        let text2 = to_bench(&back);
        let back2 = parse_bench(ckt.name(), &text2).unwrap();
        prop_assert_eq!(back2.num_gates(), back.num_gates());
    }

    #[test]
    fn pdl_roundtrip_preserves_structure(seed in 0u64..10_000) {
        let ckt = random_circuit(seed, 4, 20);
        let text = to_pdl(&ckt);
        let back = parse_pdl(ckt.name(), &text).unwrap();
        prop_assert_eq!(back.num_inputs(), ckt.num_inputs());
        prop_assert_eq!(back.num_gates(), ckt.num_gates());
    }

    #[test]
    fn blif_roundtrip_is_a_text_fixpoint(seed in 0u64..10_000) {
        // Adversarially named circuits (synthetic-label collisions, numeric
        // names, constants) — the same shapes the `.bench`/PDL writer-bug
        // tests cover — plus the odd truth-table component, which only
        // BLIF can serialize.
        let base = random_named_circuit(seed, 5, 25);
        let ckt = if seed % 3 == 0 { sprinkle_luts(&base, seed) } else { base };
        let text = to_blif(&ckt);
        let back = parse_blif(ckt.name(), &text).unwrap();
        prop_assert_eq!(back.num_inputs(), ckt.num_inputs());
        prop_assert_eq!(back.num_outputs(), ckt.num_outputs());
        prop_assert_eq!(back.num_nodes(), ckt.num_nodes());
        // parse → write fixpoint, bit-identical.
        prop_assert_eq!(to_blif(&back), text);
        // And stable under one more round for good measure.
        let back2 = parse_blif(ckt.name(), &to_blif(&back)).unwrap();
        prop_assert_eq!(to_blif(&back2), text);
    }

    #[test]
    fn tpi_modified_circuits_roundtrip_blif_bit_identically(seed in 0u64..5_000) {
        let ckt = random_named_circuit(seed, 5, 25);
        let (modified, _) = insert_random_points(&ckt, seed ^ 0xb11f);
        let text = to_blif(&modified);
        let back = parse_blif(modified.name(), &text).unwrap();
        prop_assert_eq!(back.num_inputs(), modified.num_inputs());
        prop_assert_eq!(back.num_outputs(), modified.num_outputs());
        prop_assert_eq!(back.num_nodes(), modified.num_nodes());
        prop_assert_eq!(to_blif(&back), text);
    }

    #[test]
    fn levelization_respects_dependencies(seed in 0u64..10_000) {
        let ckt = random_circuit(seed, 6, 40);
        let levels = Levels::new(&ckt);
        prop_assert_eq!(levels.order().len(), ckt.num_nodes());
        let mut seen = vec![false; ckt.num_nodes()];
        for &id in levels.order() {
            for &f in ckt.node(id).fanins() {
                prop_assert!(seen[f.index()], "fanin after consumer");
                prop_assert!(levels.level(f) < levels.level(id));
            }
            seen[id.index()] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fanout_map_is_inverse_of_fanins(seed in 0u64..10_000) {
        let ckt = random_circuit(seed, 5, 30);
        let fanouts = Fanouts::new(&ckt);
        // Every fanin edge appears exactly once in the fanout map.
        let mut count_from_fanins = 0usize;
        for (id, node) in ckt.iter() {
            for (pin, &f) in node.fanins().iter().enumerate() {
                prop_assert!(
                    fanouts.of(f).contains(&(id, pin as u8)),
                    "missing fanout edge"
                );
                count_from_fanins += 1;
            }
        }
        let count_from_fanouts: usize = (0..ckt.num_nodes())
            .map(|i| fanouts.degree(NodeId::from_index(i)))
            .sum();
        prop_assert_eq!(count_from_fanins, count_from_fanouts);
    }

    #[test]
    fn tpi_modified_circuits_roundtrip_bench_bit_identically(seed in 0u64..5_000) {
        let ckt = random_named_circuit(seed, 5, 25);
        let (modified, points) = insert_random_points(&ckt, seed ^ 0x7e57);
        let text = to_bench(&modified);
        // Generated pseudo-input/pseudo-output names survive serialization.
        for p in &points {
            prop_assert!(text.contains(&p.gate_name), "missing {}", p.gate_name);
            if let Some(ctrl) = p.control_input {
                // A later point may itself target the pseudo-input (the net
                // keeps the name, the driver gets a suffix), so check the
                // final circuit's label rather than the recorded one.
                let n = modified.node_label(ctrl);
                prop_assert!(text.contains(&format!("INPUT({n})")), "missing INPUT({n})");
            }
            if p.observe_output.is_some() {
                prop_assert!(
                    text.contains(&format!("OUTPUT({})", p.gate_name)),
                    "missing OUTPUT({})", p.gate_name
                );
            }
        }
        let back = parse_bench(modified.name(), &text).unwrap();
        prop_assert_eq!(back.num_inputs(), modified.num_inputs());
        prop_assert_eq!(back.num_outputs(), modified.num_outputs());
        prop_assert_eq!(back.num_gates(), modified.num_gates());
        // Bit-identical fixpoint: serializing the parsed circuit again
        // reproduces the text exactly (names, order, interface).
        prop_assert_eq!(to_bench(&back), text);
    }

    #[test]
    fn tpi_modified_circuits_roundtrip_pdl_bit_identically(seed in 0u64..5_000) {
        let ckt = random_named_circuit(seed, 4, 20);
        let (modified, _) = insert_random_points(&ckt, seed ^ 0x9d1);
        let text = to_pdl(&modified);
        let back = parse_pdl(modified.name(), &text).unwrap();
        prop_assert_eq!(back.num_inputs(), modified.num_inputs());
        prop_assert_eq!(back.num_outputs(), modified.num_outputs());
        prop_assert_eq!(back.num_gates(), modified.num_gates());
        prop_assert_eq!(to_pdl(&back), text);
    }

    #[test]
    fn joining_points_are_symmetric(seed in 0u64..2_000) {
        let ckt = random_circuit(seed, 5, 25);
        let fanouts = Fanouts::new(&ckt);
        let mut jp = JoiningPoints::new(&ckt);
        // Pick the fanins of the deepest 2-input gate.
        let levels = Levels::new(&ckt);
        let gate = levels
            .order()
            .iter()
            .rev()
            .find(|&&id| ckt.node(id).fanins().len() == 2);
        if let Some(&gate) = gate {
            let a = ckt.node(gate).fanins()[0];
            let b = ckt.node(gate).fanins()[1];
            let v_ab = jp.find(&ckt, &fanouts, a, b, 12);
            let v_ba = jp.find(&ckt, &fanouts, b, a, 12);
            prop_assert_eq!(v_ab, v_ba, "V(a,b) must equal V(b,a)");
        }
    }
}
