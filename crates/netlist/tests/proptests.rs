//! Property-based tests of the netlist kernel: parser round-trips,
//! levelization invariants, joining-point symmetry.

use proptest::prelude::*;
use protest_netlist::analyze::{Fanouts, JoiningPoints};
use protest_netlist::{
    insert_test_point, parse_bench, parse_pdl, to_bench, to_pdl, Circuit, CircuitBuilder, GateKind,
    InsertedPoint, Levels, NodeId, TestPointKind, TestPointSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded random circuit built directly here (keeps this crate independent
/// of `protest-circuits`, which depends on us).
fn random_circuit(seed: u64, inputs: usize, gates: usize) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(format!("r{seed}"));
    let mut pool = b.input_bus("x", inputs);
    for _ in 0..gates {
        let kind = match rng.gen_range(0..6u32) {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Nand,
            3 => GateKind::Nor,
            4 => GateKind::Xor,
            _ => GateKind::Not,
        };
        let arity = if kind == GateKind::Not { 1 } else { 2 };
        let fanins: Vec<NodeId> = (0..arity)
            .map(|_| pool[rng.gen_range(0..pool.len())])
            .collect();
        pool.push(b.gate(kind, &fanins));
    }
    let out = *pool.last().expect("nonempty pool");
    b.output(out, "z");
    b.finish().expect("valid construction")
}

/// Like [`random_circuit`], but with the adversarial naming the writers
/// must survive: some gates carry explicit `n<j>` names (the shape every
/// circuit parsed back from a synthetic-name `.bench` file has, where they
/// can collide with the writer's labels for *unnamed* nodes), and the odd
/// constant node (exercising the PDL `const0()`/`const1()` form).
fn random_named_circuit(seed: u64, inputs: usize, gates: usize) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut ckt = random_circuit(seed, inputs, gates);
    // Rebuild with extra names/constants via the builder for validation.
    let mut b = CircuitBuilder::new(ckt.name().to_string());
    let mut map = Vec::with_capacity(ckt.num_nodes());
    for (id, node) in ckt.iter() {
        let new_id = match node.kind() {
            GateKind::Input => b.input(node.name().unwrap().to_string()),
            kind => {
                let fanins: Vec<NodeId> = node.fanins().iter().map(|&f| map[f.index()]).collect();
                let g = b.gate(kind, &fanins);
                match rng.gen_range(0..8u32) {
                    // Adversarial: an explicit name in the synthetic `n<j>`
                    // namespace, usually pointing at a *different* index.
                    0..=1 => b.name(g, format!("n{}", rng.gen_range(0..2 * gates))),
                    // ISCAS-style purely numeric name: legal in `.bench`,
                    // representable in PDL only via synthetic fallback.
                    2 => b.name(g, format!("{}", rng.gen_range(100..100 + 2 * gates))),
                    _ => {}
                }
                g
            }
        };
        map.push(new_id);
        let _ = id;
    }
    if rng.gen_range(0..3u32) == 0 {
        let k = b.constant(rng.gen_range(0..2u32) == 1);
        let z = *map.last().unwrap();
        let g = b.xor2(z, k);
        b.output(g, "zk");
    } else {
        b.output(*map.last().unwrap(), "z");
    }
    // Name collisions (two gates drawing the same n<j>) are rare but
    // possible; fall back to the unnamed circuit in that case.
    if let Ok(c) = b.finish() {
        ckt = c;
    }
    ckt
}

/// Applies 1–4 random test points (all kinds) to a circuit.
fn insert_random_points(ckt: &Circuit, seed: u64) -> (Circuit, Vec<InsertedPoint>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let count = rng.gen_range(1..5usize);
    let mut current = ckt.clone();
    let mut points = Vec::new();
    for _ in 0..count {
        let candidates: Vec<NodeId> = current
            .iter()
            .filter(|(_, n)| !matches!(n.kind(), GateKind::Const(_)))
            .map(|(id, _)| id)
            .collect();
        let node = candidates[rng.gen_range(0..candidates.len())];
        let kind = match rng.gen_range(0..3u32) {
            0 => TestPointKind::Observe,
            1 => TestPointKind::ControlZero,
            _ => TestPointKind::ControlOne,
        };
        let (next, point) = insert_test_point(&current, TestPointSpec { node, kind })
            .expect("insertion on a non-constant node succeeds");
        current = next;
        points.push(point);
    }
    (current, points)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bench_roundtrip_preserves_structure(seed in 0u64..10_000) {
        let ckt = random_circuit(seed, 5, 25);
        let text = to_bench(&ckt);
        let back = parse_bench(ckt.name(), &text).unwrap();
        prop_assert_eq!(back.num_inputs(), ckt.num_inputs());
        prop_assert_eq!(back.num_outputs(), ckt.num_outputs());
        prop_assert_eq!(back.num_gates(), ckt.num_gates());
        // Round-trip again: the second serialization must be stable.
        let text2 = to_bench(&back);
        let back2 = parse_bench(ckt.name(), &text2).unwrap();
        prop_assert_eq!(back2.num_gates(), back.num_gates());
    }

    #[test]
    fn pdl_roundtrip_preserves_structure(seed in 0u64..10_000) {
        let ckt = random_circuit(seed, 4, 20);
        let text = to_pdl(&ckt);
        let back = parse_pdl(ckt.name(), &text).unwrap();
        prop_assert_eq!(back.num_inputs(), ckt.num_inputs());
        prop_assert_eq!(back.num_gates(), ckt.num_gates());
    }

    #[test]
    fn levelization_respects_dependencies(seed in 0u64..10_000) {
        let ckt = random_circuit(seed, 6, 40);
        let levels = Levels::new(&ckt);
        prop_assert_eq!(levels.order().len(), ckt.num_nodes());
        let mut seen = vec![false; ckt.num_nodes()];
        for &id in levels.order() {
            for &f in ckt.node(id).fanins() {
                prop_assert!(seen[f.index()], "fanin after consumer");
                prop_assert!(levels.level(f) < levels.level(id));
            }
            seen[id.index()] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fanout_map_is_inverse_of_fanins(seed in 0u64..10_000) {
        let ckt = random_circuit(seed, 5, 30);
        let fanouts = Fanouts::new(&ckt);
        // Every fanin edge appears exactly once in the fanout map.
        let mut count_from_fanins = 0usize;
        for (id, node) in ckt.iter() {
            for (pin, &f) in node.fanins().iter().enumerate() {
                prop_assert!(
                    fanouts.of(f).contains(&(id, pin as u8)),
                    "missing fanout edge"
                );
                count_from_fanins += 1;
            }
        }
        let count_from_fanouts: usize = (0..ckt.num_nodes())
            .map(|i| fanouts.degree(NodeId::from_index(i)))
            .sum();
        prop_assert_eq!(count_from_fanins, count_from_fanouts);
    }

    #[test]
    fn tpi_modified_circuits_roundtrip_bench_bit_identically(seed in 0u64..5_000) {
        let ckt = random_named_circuit(seed, 5, 25);
        let (modified, points) = insert_random_points(&ckt, seed ^ 0x7e57);
        let text = to_bench(&modified);
        // Generated pseudo-input/pseudo-output names survive serialization.
        for p in &points {
            prop_assert!(text.contains(&p.gate_name), "missing {}", p.gate_name);
            if let Some(ctrl) = p.control_input {
                // A later point may itself target the pseudo-input (the net
                // keeps the name, the driver gets a suffix), so check the
                // final circuit's label rather than the recorded one.
                let n = modified.node_label(ctrl);
                prop_assert!(text.contains(&format!("INPUT({n})")), "missing INPUT({n})");
            }
            if p.observe_output.is_some() {
                prop_assert!(
                    text.contains(&format!("OUTPUT({})", p.gate_name)),
                    "missing OUTPUT({})", p.gate_name
                );
            }
        }
        let back = parse_bench(modified.name(), &text).unwrap();
        prop_assert_eq!(back.num_inputs(), modified.num_inputs());
        prop_assert_eq!(back.num_outputs(), modified.num_outputs());
        prop_assert_eq!(back.num_gates(), modified.num_gates());
        // Bit-identical fixpoint: serializing the parsed circuit again
        // reproduces the text exactly (names, order, interface).
        prop_assert_eq!(to_bench(&back), text);
    }

    #[test]
    fn tpi_modified_circuits_roundtrip_pdl_bit_identically(seed in 0u64..5_000) {
        let ckt = random_named_circuit(seed, 4, 20);
        let (modified, _) = insert_random_points(&ckt, seed ^ 0x9d1);
        let text = to_pdl(&modified);
        let back = parse_pdl(modified.name(), &text).unwrap();
        prop_assert_eq!(back.num_inputs(), modified.num_inputs());
        prop_assert_eq!(back.num_outputs(), modified.num_outputs());
        prop_assert_eq!(back.num_gates(), modified.num_gates());
        prop_assert_eq!(to_pdl(&back), text);
    }

    #[test]
    fn joining_points_are_symmetric(seed in 0u64..2_000) {
        let ckt = random_circuit(seed, 5, 25);
        let fanouts = Fanouts::new(&ckt);
        let mut jp = JoiningPoints::new(&ckt);
        // Pick the fanins of the deepest 2-input gate.
        let levels = Levels::new(&ckt);
        let gate = levels
            .order()
            .iter()
            .rev()
            .find(|&&id| ckt.node(id).fanins().len() == 2);
        if let Some(&gate) = gate {
            let a = ckt.node(gate).fanins()[0];
            let b = ckt.node(gate).fanins()[1];
            let v_ab = jp.find(&ckt, &fanouts, a, b, 12);
            let v_ba = jp.find(&ckt, &fanouts, b, a, 12);
            prop_assert_eq!(v_ab, v_ba, "V(a,b) must equal V(b,a)");
        }
    }
}
