//! Property-based tests of the netlist kernel: parser round-trips,
//! levelization invariants, joining-point symmetry.

use proptest::prelude::*;
use protest_netlist::analyze::{Fanouts, JoiningPoints};
use protest_netlist::{
    parse_bench, parse_pdl, to_bench, to_pdl, Circuit, CircuitBuilder, GateKind, Levels, NodeId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded random circuit built directly here (keeps this crate independent
/// of `protest-circuits`, which depends on us).
fn random_circuit(seed: u64, inputs: usize, gates: usize) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(format!("r{seed}"));
    let mut pool = b.input_bus("x", inputs);
    for _ in 0..gates {
        let kind = match rng.gen_range(0..6u32) {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Nand,
            3 => GateKind::Nor,
            4 => GateKind::Xor,
            _ => GateKind::Not,
        };
        let arity = if kind == GateKind::Not { 1 } else { 2 };
        let fanins: Vec<NodeId> = (0..arity)
            .map(|_| pool[rng.gen_range(0..pool.len())])
            .collect();
        pool.push(b.gate(kind, &fanins));
    }
    let out = *pool.last().expect("nonempty pool");
    b.output(out, "z");
    b.finish().expect("valid construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bench_roundtrip_preserves_structure(seed in 0u64..10_000) {
        let ckt = random_circuit(seed, 5, 25);
        let text = to_bench(&ckt);
        let back = parse_bench(ckt.name(), &text).unwrap();
        prop_assert_eq!(back.num_inputs(), ckt.num_inputs());
        prop_assert_eq!(back.num_outputs(), ckt.num_outputs());
        prop_assert_eq!(back.num_gates(), ckt.num_gates());
        // Round-trip again: the second serialization must be stable.
        let text2 = to_bench(&back);
        let back2 = parse_bench(ckt.name(), &text2).unwrap();
        prop_assert_eq!(back2.num_gates(), back.num_gates());
    }

    #[test]
    fn pdl_roundtrip_preserves_structure(seed in 0u64..10_000) {
        let ckt = random_circuit(seed, 4, 20);
        let text = to_pdl(&ckt);
        let back = parse_pdl(ckt.name(), &text).unwrap();
        prop_assert_eq!(back.num_inputs(), ckt.num_inputs());
        prop_assert_eq!(back.num_gates(), ckt.num_gates());
    }

    #[test]
    fn levelization_respects_dependencies(seed in 0u64..10_000) {
        let ckt = random_circuit(seed, 6, 40);
        let levels = Levels::new(&ckt);
        prop_assert_eq!(levels.order().len(), ckt.num_nodes());
        let mut seen = vec![false; ckt.num_nodes()];
        for &id in levels.order() {
            for &f in ckt.node(id).fanins() {
                prop_assert!(seen[f.index()], "fanin after consumer");
                prop_assert!(levels.level(f) < levels.level(id));
            }
            seen[id.index()] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fanout_map_is_inverse_of_fanins(seed in 0u64..10_000) {
        let ckt = random_circuit(seed, 5, 30);
        let fanouts = Fanouts::new(&ckt);
        // Every fanin edge appears exactly once in the fanout map.
        let mut count_from_fanins = 0usize;
        for (id, node) in ckt.iter() {
            for (pin, &f) in node.fanins().iter().enumerate() {
                prop_assert!(
                    fanouts.of(f).contains(&(id, pin as u8)),
                    "missing fanout edge"
                );
                count_from_fanins += 1;
            }
        }
        let count_from_fanouts: usize = (0..ckt.num_nodes())
            .map(|i| fanouts.degree(NodeId::from_index(i)))
            .sum();
        prop_assert_eq!(count_from_fanins, count_from_fanouts);
    }

    #[test]
    fn joining_points_are_symmetric(seed in 0u64..2_000) {
        let ckt = random_circuit(seed, 5, 25);
        let fanouts = Fanouts::new(&ckt);
        let mut jp = JoiningPoints::new(&ckt);
        // Pick the fanins of the deepest 2-input gate.
        let levels = Levels::new(&ckt);
        let gate = levels
            .order()
            .iter()
            .rev()
            .find(|&&id| ckt.node(id).fanins().len() == 2);
        if let Some(&gate) = gate {
            let a = ckt.node(gate).fanins()[0];
            let b = ckt.node(gate).fanins()[1];
            let v_ab = jp.find(&ckt, &fanouts, a, b, 12);
            let v_ba = jp.find(&ckt, &fanouts, b, a, 12);
            prop_assert_eq!(v_ab, v_ba, "V(a,b) must equal V(b,a)");
        }
    }
}
