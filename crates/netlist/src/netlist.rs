use std::collections::HashMap;
use std::fmt;

use crate::error::NetlistError;
use crate::gate::{GateKind, LutId, TruthTable};

/// Index of a node inside a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates an id from a raw index.
    ///
    /// Mostly useful for iterating `0..circuit.num_nodes()`.
    pub fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }

    /// The raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A view of a single gate (or input/constant) in a circuit.
///
/// Circuits store their nodes in flat struct-of-arrays form (one kinds
/// array, one contiguous fanin CSR array, one names array); a `Node` is a
/// cheap `Copy` handle into that storage, not an owned record. Its
/// accessors borrow from the circuit, so a slice obtained through
/// [`Node::fanins`] stays valid after the handle itself goes out of scope.
#[derive(Clone, Copy)]
pub struct Node<'a> {
    circuit: &'a Circuit,
    idx: u32,
}

impl<'a> Node<'a> {
    /// The logic function of the node.
    pub fn kind(&self) -> GateKind {
        self.circuit.kinds[self.idx as usize]
    }

    /// The fanin nodes, in pin order.
    pub fn fanins(&self) -> &'a [NodeId] {
        self.circuit.fanins_of(self.idx as usize)
    }

    /// The declared signal name, if any.
    pub fn name(&self) -> Option<&'a str> {
        self.circuit.names[self.idx as usize].as_deref()
    }

    /// This node's id in the circuit.
    pub fn id(&self) -> NodeId {
        NodeId(self.idx)
    }
}

impl fmt::Debug for Node<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("id", &NodeId(self.idx))
            .field("kind", &self.kind())
            .field("fanins", &self.fanins())
            .field("name", &self.name())
            .finish()
    }
}

/// An immutable combinational circuit: a DAG of [`Node`]s with designated
/// primary inputs and primary outputs.
///
/// Circuits are created through [`CircuitBuilder`](crate::CircuitBuilder) or
/// the parsers, both of which validate arity, acyclicity and name uniqueness.
/// Any node may be marked as a primary output; output order is the
/// declaration order.
///
/// # Storage
///
/// Nodes are held in struct-of-arrays form: a flat kinds array, a flat
/// optional-name array and one contiguous fanin array indexed through CSR
/// offsets — no per-node heap allocations. Construction additionally
/// derives an input-position table and a primary-output bitset, so
/// [`input_position`](Circuit::input_position) and
/// [`is_output`](Circuit::is_output) are O(1) (both sit on per-node hot
/// paths of the analysis passes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    pub(crate) name: String,
    pub(crate) kinds: Vec<GateKind>,
    pub(crate) names: Vec<Option<String>>,
    /// CSR offsets into `fanin_dat`; length `num_nodes() + 1`.
    pub(crate) fanin_off: Vec<u32>,
    /// Concatenated fanin lists of all nodes, in pin order.
    pub(crate) fanin_dat: Vec<NodeId>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    pub(crate) output_names: Vec<Option<String>>,
    pub(crate) luts: Vec<TruthTable>,
    /// Derived: position in `inputs` per node (`u32::MAX` = not an input).
    input_pos: Vec<u32>,
    /// Derived: bitset over node indices of the primary outputs.
    output_words: Vec<u64>,
}

/// The unassembled storage of a circuit under construction: the flat
/// struct-of-arrays fields of [`Circuit`] without the derived lookup
/// structures. The builder, the parsers and the test-point editor all
/// accumulate into one of these and call [`CircuitParts::assemble`], which
/// computes the derived fields in one O(n) pass.
#[derive(Debug, Clone)]
pub(crate) struct CircuitParts {
    pub(crate) name: String,
    pub(crate) kinds: Vec<GateKind>,
    pub(crate) names: Vec<Option<String>>,
    pub(crate) fanin_off: Vec<u32>,
    pub(crate) fanin_dat: Vec<NodeId>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    pub(crate) output_names: Vec<Option<String>>,
    pub(crate) luts: Vec<TruthTable>,
}

impl CircuitParts {
    /// Empty storage for a named circuit.
    pub(crate) fn new(name: impl Into<String>) -> Self {
        CircuitParts {
            name: name.into(),
            kinds: Vec::new(),
            names: Vec::new(),
            fanin_off: vec![0],
            fanin_dat: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            output_names: Vec::new(),
            luts: Vec::new(),
        }
    }

    /// Reopens an assembled circuit for structural editing (the test-point
    /// inserter appends nodes and redirects fanins in place).
    pub(crate) fn from_circuit(circuit: &Circuit) -> Self {
        CircuitParts {
            name: circuit.name.clone(),
            kinds: circuit.kinds.clone(),
            names: circuit.names.clone(),
            fanin_off: circuit.fanin_off.clone(),
            fanin_dat: circuit.fanin_dat.clone(),
            inputs: circuit.inputs.clone(),
            outputs: circuit.outputs.clone(),
            output_names: circuit.output_names.clone(),
            luts: circuit.luts.clone(),
        }
    }

    /// Number of nodes pushed so far.
    pub(crate) fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Appends one node, extending the fanin CSR.
    pub(crate) fn push_node(
        &mut self,
        kind: GateKind,
        fanins: &[NodeId],
        name: Option<String>,
    ) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.names.push(name);
        self.fanin_dat.extend_from_slice(fanins);
        self.fanin_off.push(self.fanin_dat.len() as u32);
        id
    }

    /// Builds the [`Circuit`], deriving the O(1) lookup structures. Does
    /// **not** validate — callers run [`Circuit::validate`] afterwards.
    pub(crate) fn assemble(self) -> Circuit {
        let n = self.kinds.len();
        let mut input_pos = vec![u32::MAX; n];
        for (p, &id) in self.inputs.iter().enumerate() {
            if id.index() < n && input_pos[id.index()] == u32::MAX {
                input_pos[id.index()] = p as u32;
            }
        }
        let mut output_words = vec![0u64; n.div_ceil(64)];
        for &o in &self.outputs {
            if o.index() < n {
                output_words[o.index() >> 6] |= 1 << (o.index() & 63);
            }
        }
        Circuit {
            name: self.name,
            kinds: self.kinds,
            names: self.names,
            fanin_off: self.fanin_off,
            fanin_dat: self.fanin_dat,
            inputs: self.inputs,
            outputs: self.outputs,
            output_names: self.output_names,
            luts: self.luts,
            input_pos,
            output_words,
        }
    }
}

impl Circuit {
    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes (inputs + gates + constants).
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of logic gates (nodes that are neither inputs nor constants).
    pub fn num_gates(&self) -> usize {
        self.kinds
            .iter()
            .filter(|k| !matches!(k, GateKind::Input | GateKind::Const(_)))
            .count()
    }

    /// The fanin slice of the node at `index` (CSR lookup).
    pub(crate) fn fanins_of(&self, index: usize) -> &[NodeId] {
        &self.fanin_dat[self.fanin_off[index] as usize..self.fanin_off[index + 1] as usize]
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> Node<'_> {
        assert!(id.index() < self.kinds.len(), "node id out of range");
        Node {
            circuit: self,
            idx: id.0,
        }
    }

    /// Iterates over all nodes in storage order ([`NodeId::index`] order).
    pub fn nodes(&self) -> impl Iterator<Item = Node<'_>> {
        (0..self.kinds.len() as u32).map(|idx| Node { circuit: self, idx })
    }

    /// Iterates over `(id, node)` pairs in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Node<'_>)> {
        (0..self.kinds.len() as u32).map(|idx| (NodeId(idx), Node { circuit: self, idx }))
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The position of `id` in the primary input list, if it is an input.
    /// O(1) via the derived position table.
    pub fn input_position(&self, id: NodeId) -> Option<usize> {
        match self.input_pos.get(id.index()) {
            Some(&p) if p != u32::MAX => Some(p as usize),
            _ => None,
        }
    }

    /// Whether `id` is marked as a primary output. O(1) via the derived
    /// output bitset.
    pub fn is_output(&self, id: NodeId) -> bool {
        self.output_words
            .get(id.index() >> 6)
            .is_some_and(|w| (w >> (id.index() & 63)) & 1 == 1)
    }

    /// The name of the `i`-th primary output (explicit output name, falling
    /// back to the driving node's name).
    pub fn output_name(&self, i: usize) -> Option<&str> {
        self.output_names[i]
            .as_deref()
            .or_else(|| self.names[self.outputs[i].index()].as_deref())
    }

    /// The interned truth table behind a [`GateKind::Lut`] node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn lut(&self, id: LutId) -> &TruthTable {
        &self.luts[id.index()]
    }

    /// All interned truth tables.
    pub fn luts(&self) -> &[TruthTable] {
        &self.luts
    }

    /// Finds a node by name (inputs, gates and named outputs).
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.names
            .iter()
            .position(|n| n.as_deref() == Some(name))
            .map(|i| NodeId(i as u32))
    }

    /// A display name for the node: its declared name or `n<i>`.
    pub fn node_label(&self, id: NodeId) -> String {
        match &self.names[id.index()] {
            Some(n) => n.clone(),
            None => format!("{id}"),
        }
    }

    /// Bytes of heap memory held by the flat structural arrays (kinds,
    /// fanin CSR, interface lists and the derived lookup tables). Signal
    /// names are excluded — they are presentation data, not hot-path
    /// structure. Exposed so the CLI's `stats` counters can report the
    /// struct-of-arrays footprint.
    pub fn flat_storage_bytes(&self) -> usize {
        self.kinds.len() * std::mem::size_of::<GateKind>()
            + self.fanin_off.len() * std::mem::size_of::<u32>()
            + self.fanin_dat.len() * std::mem::size_of::<NodeId>()
            + (self.inputs.len() + self.outputs.len()) * std::mem::size_of::<NodeId>()
            + self.input_pos.len() * std::mem::size_of::<u32>()
            + self.output_words.len() * std::mem::size_of::<u64>()
    }

    /// Validates structural invariants. Called by the builder and parsers;
    /// exposed for circuits assembled by other means.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: bad arity, dangling fanin,
    /// unknown LUT, combinational cycle, duplicate name, or an empty
    /// input/output interface.
    pub fn validate(&self) -> Result<(), NetlistError> {
        if self.inputs.is_empty() {
            return Err(NetlistError::EmptyInterface { what: "inputs" });
        }
        if self.outputs.is_empty() {
            return Err(NetlistError::EmptyInterface { what: "outputs" });
        }
        let n = self.kinds.len();
        for i in 0..n {
            let id = NodeId(i as u32);
            let kind = self.kinds[i];
            let fanins = self.fanins_of(i);
            if !kind.arity_ok(fanins.len()) {
                return Err(NetlistError::Arity {
                    kind: kind.mnemonic(),
                    got: fanins.len(),
                    expected: kind.arity_expected(),
                });
            }
            if let GateKind::Lut(lid) = kind {
                let table = self
                    .luts
                    .get(lid.index())
                    .ok_or(NetlistError::UnknownLut { id: lid.index() })?;
                if table.num_inputs() != fanins.len() {
                    return Err(NetlistError::Arity {
                        kind: "lut",
                        got: fanins.len(),
                        expected: "the table's declared width",
                    });
                }
            }
            for &f in fanins {
                if f.index() >= n {
                    return Err(NetlistError::DanglingFanin { node: id, fanin: f });
                }
            }
        }
        // Cycle check via Kahn's algorithm. The fanout adjacency is built
        // as a CSR array by counting sort — no per-node allocations, so
        // validation stays O(n + edges) at any circuit size.
        let mut indeg: Vec<u32> = (0..n)
            .map(|i| self.fanin_off[i + 1] - self.fanin_off[i])
            .collect();
        let mut fanout_off = vec![0u32; n + 1];
        for &f in &self.fanin_dat {
            fanout_off[f.index() + 1] += 1;
        }
        for i in 0..n {
            fanout_off[i + 1] += fanout_off[i];
        }
        let mut fanout_dat = vec![0u32; self.fanin_dat.len()];
        let mut cursor = fanout_off.clone();
        for i in 0..n {
            for &f in self.fanins_of(i) {
                fanout_dat[cursor[f.index()] as usize] = i as u32;
                cursor[f.index()] += 1;
            }
        }
        let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        let mut emitted = 0usize;
        while let Some(v) = queue.pop() {
            emitted += 1;
            let lo = fanout_off[v as usize] as usize;
            let hi = fanout_off[v as usize + 1] as usize;
            for &u in &fanout_dat[lo..hi] {
                indeg[u as usize] -= 1;
                if indeg[u as usize] == 0 {
                    queue.push(u);
                }
            }
        }
        if emitted != n {
            let node = (0..n)
                .find(|&i| indeg[i] > 0)
                .map(|i| NodeId(i as u32))
                .expect("some node must remain on a cycle");
            return Err(NetlistError::Cycle { node });
        }
        // Duplicate names.
        let mut seen: HashMap<&str, NodeId> = HashMap::new();
        for (i, name) in self.names.iter().enumerate() {
            if let Some(name) = name.as_deref() {
                if seen.insert(name, NodeId(i as u32)).is_some() {
                    return Err(NetlistError::DuplicateName {
                        name: name.to_string(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::CircuitBuilder;

    #[test]
    fn basic_accessors() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let g = b.and2(a, c);
        b.output(g, "z");
        let ckt = b.finish().unwrap();
        assert_eq!(ckt.name(), "t");
        assert_eq!(ckt.num_nodes(), 3);
        assert_eq!(ckt.num_gates(), 1);
        assert_eq!(ckt.inputs().len(), 2);
        assert_eq!(ckt.outputs(), &[g]);
        assert_eq!(ckt.find("a"), Some(a));
        assert_eq!(ckt.input_position(c), Some(1));
        assert!(ckt.is_output(g));
        assert!(!ckt.is_output(a));
        assert_eq!(ckt.output_name(0), Some("z"));
        assert_eq!(ckt.node_label(a), "a");
    }

    #[test]
    fn flat_storage_is_contiguous() {
        let mut b = CircuitBuilder::new("t");
        let xs = b.input_bus("x", 3);
        let g1 = b.and2(xs[0], xs[1]);
        let g2 = b.or2(g1, xs[2]);
        b.output(g2, "z");
        let ckt = b.finish().unwrap();
        // Every node's fanins come from one shared array; positions are O(1).
        assert_eq!(ckt.node(g1).fanins(), &[xs[0], xs[1]]);
        assert_eq!(ckt.node(g2).fanins(), &[g1, xs[2]]);
        for (p, &i) in ckt.inputs().iter().enumerate() {
            assert_eq!(ckt.input_position(i), Some(p));
        }
        assert_eq!(ckt.input_position(g1), None);
        assert!(ckt.flat_storage_bytes() > 0);
    }
}
