use std::collections::HashMap;
use std::fmt;

use crate::error::NetlistError;
use crate::gate::{GateKind, LutId, TruthTable};

/// Index of a node inside a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates an id from a raw index.
    ///
    /// Mostly useful for iterating `0..circuit.num_nodes()`.
    pub fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }

    /// The raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single gate (or input/constant) in a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub(crate) kind: GateKind,
    pub(crate) fanins: Vec<NodeId>,
    pub(crate) name: Option<String>,
}

impl Node {
    /// The logic function of the node.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The fanin nodes, in pin order.
    pub fn fanins(&self) -> &[NodeId] {
        &self.fanins
    }

    /// The declared signal name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

/// An immutable combinational circuit: a DAG of [`Node`]s with designated
/// primary inputs and primary outputs.
///
/// Circuits are created through [`CircuitBuilder`](crate::CircuitBuilder) or
/// the parsers, both of which validate arity, acyclicity and name uniqueness.
/// Any node may be marked as a primary output; output order is the
/// declaration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    pub(crate) output_names: Vec<Option<String>>,
    pub(crate) luts: Vec<TruthTable>,
}

impl Circuit {
    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes (inputs + gates + constants).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of logic gates (nodes that are neither inputs nor constants).
    pub fn num_gates(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !matches!(n.kind, GateKind::Input | GateKind::Const(_)))
            .count()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Iterates over `(id, node)` pairs in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The position of `id` in the primary input list, if it is an input.
    pub fn input_position(&self, id: NodeId) -> Option<usize> {
        self.inputs.iter().position(|&i| i == id)
    }

    /// Whether `id` is marked as a primary output.
    pub fn is_output(&self, id: NodeId) -> bool {
        self.outputs.contains(&id)
    }

    /// The name of the `i`-th primary output (explicit output name, falling
    /// back to the driving node's name).
    pub fn output_name(&self, i: usize) -> Option<&str> {
        self.output_names[i]
            .as_deref()
            .or_else(|| self.nodes[self.outputs[i].index()].name.as_deref())
    }

    /// The interned truth table behind a [`GateKind::Lut`] node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn lut(&self, id: LutId) -> &TruthTable {
        &self.luts[id.index()]
    }

    /// All interned truth tables.
    pub fn luts(&self) -> &[TruthTable] {
        &self.luts
    }

    /// Finds a node by name (inputs, gates and named outputs).
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name.as_deref() == Some(name))
            .map(|i| NodeId(i as u32))
    }

    /// A display name for the node: its declared name or `n<i>`.
    pub fn node_label(&self, id: NodeId) -> String {
        match &self.nodes[id.index()].name {
            Some(n) => n.clone(),
            None => format!("{id}"),
        }
    }

    /// Validates structural invariants. Called by the builder and parsers;
    /// exposed for circuits assembled by other means.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: bad arity, dangling fanin,
    /// unknown LUT, combinational cycle, duplicate name, or an empty
    /// input/output interface.
    pub fn validate(&self) -> Result<(), NetlistError> {
        if self.inputs.is_empty() {
            return Err(NetlistError::EmptyInterface { what: "inputs" });
        }
        if self.outputs.is_empty() {
            return Err(NetlistError::EmptyInterface { what: "outputs" });
        }
        let n = self.nodes.len();
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            if !node.kind.arity_ok(node.fanins.len()) {
                return Err(NetlistError::Arity {
                    kind: node.kind.mnemonic(),
                    got: node.fanins.len(),
                    expected: node.kind.arity_expected(),
                });
            }
            if let GateKind::Lut(lid) = node.kind {
                let table = self
                    .luts
                    .get(lid.index())
                    .ok_or(NetlistError::UnknownLut { id: lid.index() })?;
                if table.num_inputs() != node.fanins.len() {
                    return Err(NetlistError::Arity {
                        kind: "lut",
                        got: node.fanins.len(),
                        expected: "the table's declared width",
                    });
                }
            }
            for &f in &node.fanins {
                if f.index() >= n {
                    return Err(NetlistError::DanglingFanin { node: id, fanin: f });
                }
            }
        }
        // Cycle check via Kahn's algorithm.
        let mut indeg: Vec<u32> = vec![0; n];
        for node in &self.nodes {
            for &f in &node.fanins {
                // indegree counts uses; we topo-sort on "fanins before node".
                let _ = f;
            }
        }
        // indeg[i] = number of fanins of node i not yet emitted.
        for (i, node) in self.nodes.iter().enumerate() {
            indeg[i] = node.fanins.len() as u32;
        }
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            for &f in &node.fanins {
                fanout[f.index()].push(i as u32);
            }
        }
        let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        let mut emitted = 0usize;
        while let Some(v) = queue.pop() {
            emitted += 1;
            for &u in &fanout[v as usize] {
                indeg[u as usize] -= 1;
                if indeg[u as usize] == 0 {
                    queue.push(u);
                }
            }
        }
        if emitted != n {
            let node = (0..n)
                .find(|&i| indeg[i] > 0)
                .map(|i| NodeId(i as u32))
                .expect("some node must remain on a cycle");
            return Err(NetlistError::Cycle { node });
        }
        // Duplicate names.
        let mut seen: HashMap<&str, NodeId> = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(name) = node.name.as_deref() {
                if seen.insert(name, NodeId(i as u32)).is_some() {
                    return Err(NetlistError::DuplicateName {
                        name: name.to_string(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::CircuitBuilder;

    #[test]
    fn basic_accessors() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let g = b.and2(a, c);
        b.output(g, "z");
        let ckt = b.finish().unwrap();
        assert_eq!(ckt.name(), "t");
        assert_eq!(ckt.num_nodes(), 3);
        assert_eq!(ckt.num_gates(), 1);
        assert_eq!(ckt.inputs().len(), 2);
        assert_eq!(ckt.outputs(), &[g]);
        assert_eq!(ckt.find("a"), Some(a));
        assert_eq!(ckt.input_position(c), Some(1));
        assert!(ckt.is_output(g));
        assert_eq!(ckt.output_name(0), Some("z"));
        assert_eq!(ckt.node_label(a), "a");
    }
}
