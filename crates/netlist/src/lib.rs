//! Combinational netlist kernel for the PROTEST testability-analysis suite.
//!
//! This crate provides the circuit representation every other crate in the
//! workspace builds on:
//!
//! * [`Circuit`] — an immutable gate-level DAG with named primary inputs and
//!   outputs, supporting the standard gate library ([`GateKind`]) plus
//!   arbitrary boolean functions as truth-table components ([`TruthTable`]).
//! * [`CircuitBuilder`] — an ergonomic, validated way to construct circuits.
//! * [`Levels`] — levelization (topological order + logic depth).
//! * [`analyze`] — fanout maps, cone extraction and the *joining point* search
//!   `V(a,b)` from Wunderlich's DAC'85 paper (the set of fanout stems with one
//!   branch on a path to `a` and another on a path to `b`).
//! * Parsers/writers for the ISCAS-85 `.bench` format ([`parse_bench`]),
//!   combinational BLIF ([`parse_blif`], the lossless path for truth-table
//!   components), and a small structural description language, PDL
//!   ([`parse_pdl`]), standing in for the structure-description language the
//!   original PASCAL tool compiled.
//! * Test-point insertion ([`insert_test_point`]) — DFT netlist editing
//!   (pseudo-inputs/outputs, control/observe gates) that preserves existing
//!   node ids and names.
//! * A CMOS transistor cost model ([`transistor_count`]) used to report circuit sizes the way the
//!   paper's Tables 7 and 8 do.
//!
//! # Example
//!
//! ```
//! use protest_netlist::{CircuitBuilder, GateKind};
//!
//! # fn main() -> Result<(), protest_netlist::NetlistError> {
//! let mut b = CircuitBuilder::new("half_adder");
//! let a = b.input("a");
//! let c = b.input("b");
//! let sum = b.xor2(a, c);
//! let carry = b.and2(a, c);
//! b.output(sum, "sum");
//! b.output(carry, "carry");
//! let circuit = b.finish()?;
//! assert_eq!(circuit.num_inputs(), 2);
//! assert_eq!(circuit.num_outputs(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze_impl;
mod builder;
mod dominators;
mod error;
mod gate;
mod insert;
mod levelize;
mod netlist;
mod nodeset;
mod parse_bench;
mod parse_blif;
mod parse_pdl;
mod stats;
mod transistor;
mod write;

pub use builder::CircuitBuilder;
pub use error::NetlistError;
pub use gate::{GateKind, LutId, TruthTable};
pub use insert::{
    insert_test_point, insert_test_points, InsertedPoint, TestPointKind, TestPointSpec,
};
pub use levelize::Levels;
pub use netlist::{Circuit, Node, NodeId};
pub use nodeset::NodeSet;
pub use parse_bench::parse_bench;
pub use parse_blif::parse_blif;
pub use parse_pdl::parse_pdl;
pub use stats::{CircuitStats, GateCounts};
pub use transistor::{gate_equivalents, transistor_count, transistors_for_gate};
pub use write::{to_bench, to_blif, to_pdl};

/// Analysis passes over a [`Circuit`]: fanout maps, cones, joining points,
/// dominators.
pub mod analyze {
    pub use crate::analyze_impl::{cone_of_influence, fanin_cone, Fanouts, JoiningPoints};
    pub use crate::dominators::{DominatorChain, Dominators};
}
