//! PDL — a small structural circuit description language.
//!
//! The original PROTEST "compiles a structure description language for
//! circuits" (Sec. 7). PDL is our stand-in: a line-oriented language with
//! nested gate expressions.
//!
//! ```text
//! circuit majority_vote;
//! input a b c;
//! output z;
//! ab = and(a, b);
//! z  = or(ab, and(b, c), and(a, c));   # nested expressions allowed
//! ```
//!
//! Grammar (informal):
//!
//! ```text
//! file      := { statement }
//! statement := "circuit" IDENT ";"
//!            | "input" IDENT+ ";"
//!            | "output" IDENT+ ";"
//!            | IDENT "=" expr ";"
//! expr      := IDENT | "0" | "1" | "const0" "(" ")" | "const1" "(" ")"
//!            | GATE "(" expr { "," expr } ")"
//! GATE      := and|or|xor|nand|nor|xnor|not|buf
//! ```
//!
//! Assignments must precede use (no forward references), mirroring the
//! builder discipline; `#` starts a comment.

use std::collections::HashMap;

use crate::builder::CircuitBuilder;
use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::netlist::{Circuit, NodeId};

/// Parses PDL text into a [`Circuit`].
///
/// The `default_name` is used when the text has no `circuit <name>;`
/// statement.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for syntax errors,
/// [`NetlistError::Undefined`] for unknown signals, and any
/// [`Circuit::validate`] error.
pub fn parse_pdl(default_name: &str, text: &str) -> Result<Circuit, NetlistError> {
    let mut name = default_name.to_string();
    let mut builder = CircuitBuilder::new(default_name);
    let mut env: HashMap<String, NodeId> = HashMap::new();
    let mut pending_outputs: Vec<(usize, String)> = Vec::new();

    for (lineno0, raw) in text.lines().enumerate() {
        let lineno = lineno0 + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            parse_statement(
                stmt,
                lineno,
                &mut name,
                &mut builder,
                &mut env,
                &mut pending_outputs,
            )?;
        }
    }

    builder.set_name(name);
    for (lineno, out) in pending_outputs {
        let id = *env.get(&out).ok_or(NetlistError::Parse {
            line: lineno,
            message: format!("output `{out}` is never defined"),
        })?;
        builder.output(id, out);
    }
    builder.finish()
}

fn parse_statement(
    stmt: &str,
    lineno: usize,
    name: &mut String,
    builder: &mut CircuitBuilder,
    env: &mut HashMap<String, NodeId>,
    pending_outputs: &mut Vec<(usize, String)>,
) -> Result<(), NetlistError> {
    let perr = |message: String| NetlistError::Parse {
        line: lineno,
        message,
    };
    let mut words = stmt.split_whitespace();
    let first = words.next().ok_or_else(|| perr("empty statement".into()))?;
    match first {
        "circuit" => {
            let n = words
                .next()
                .ok_or_else(|| perr("`circuit` needs a name".into()))?;
            *name = n.to_string();
            Ok(())
        }
        "input" => {
            let mut any = false;
            for w in words {
                any = true;
                if env.contains_key(w) {
                    return Err(NetlistError::DuplicateName {
                        name: w.to_string(),
                    });
                }
                let id = builder.input(w);
                env.insert(w.to_string(), id);
            }
            if !any {
                return Err(perr("`input` lists at least one signal".into()));
            }
            Ok(())
        }
        "output" => {
            let mut any = false;
            for w in words {
                any = true;
                pending_outputs.push((lineno, w.to_string()));
            }
            if !any {
                return Err(perr("`output` lists at least one signal".into()));
            }
            Ok(())
        }
        _ => {
            // assignment: IDENT = expr
            let eq = stmt
                .find('=')
                .ok_or_else(|| perr(format!("expected assignment, got `{stmt}`")))?;
            let target = stmt[..eq].trim();
            if !is_ident(target) {
                return Err(perr(format!("bad signal name `{target}`")));
            }
            if env.contains_key(target) {
                return Err(NetlistError::DuplicateName {
                    name: target.to_string(),
                });
            }
            let mut p = Cursor {
                text: &stmt[eq + 1..],
                pos: 0,
                lineno,
            };
            let id = parse_expr(&mut p, builder, env)?;
            p.skip_ws();
            if !p.at_end() {
                return Err(perr(format!(
                    "trailing input after expression: `{}`",
                    p.rest()
                )));
            }
            builder.name(id, target);
            env.insert(target.to_string(), id);
            Ok(())
        }
    }
}

struct Cursor<'a> {
    text: &'a str,
    pos: usize,
    lineno: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.text.len() && self.text.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }
    fn peek(&self) -> Option<u8> {
        self.text.as_bytes().get(self.pos).copied()
    }
    fn at_end(&self) -> bool {
        self.pos >= self.text.len()
    }
    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }
    fn err(&self, message: String) -> NetlistError {
        NetlistError::Parse {
            line: self.lineno,
            message,
        }
    }
    fn ident(&mut self) -> Result<&'a str, NetlistError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            Err(self.err(format!("expected identifier at `{}`", self.rest())))
        } else {
            Ok(&self.text[start..self.pos])
        }
    }
    fn expect(&mut self, c: u8) -> Result<(), NetlistError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}` at `{}`", c as char, self.rest())))
        }
    }
}

fn parse_expr(
    p: &mut Cursor<'_>,
    builder: &mut CircuitBuilder,
    env: &HashMap<String, NodeId>,
) -> Result<NodeId, NetlistError> {
    let word = p.ident()?;
    let kind = match word {
        "and" => Some(GateKind::And),
        "or" => Some(GateKind::Or),
        "xor" => Some(GateKind::Xor),
        "nand" => Some(GateKind::Nand),
        "nor" => Some(GateKind::Nor),
        "xnor" => Some(GateKind::Xnor),
        "not" => Some(GateKind::Not),
        "buf" => Some(GateKind::Buf),
        _ => None,
    };
    p.skip_ws();
    // `const0()` / `const1()` — the writer's loss-free constant form
    // (the bare literals `0` / `1` below are also accepted).
    if kind.is_none() && (word == "const0" || word == "const1") && p.peek() == Some(b'(') {
        p.expect(b'(')?;
        p.expect(b')')?;
        return Ok(builder.constant(word == "const1"));
    }
    match kind {
        Some(kind) if p.peek() == Some(b'(') => {
            p.expect(b'(')?;
            let mut args = vec![parse_expr(p, builder, env)?];
            loop {
                p.skip_ws();
                match p.peek() {
                    Some(b',') => {
                        p.pos += 1;
                        args.push(parse_expr(p, builder, env)?);
                    }
                    Some(b')') => {
                        p.pos += 1;
                        break;
                    }
                    _ => return Err(p.err(format!("expected `,` or `)` at `{}`", p.rest()))),
                }
            }
            if !kind.arity_ok(args.len()) {
                return Err(p.err(format!(
                    "gate `{}` cannot take {} arguments",
                    kind.mnemonic(),
                    args.len()
                )));
            }
            Ok(builder.gate(kind, &args))
        }
        _ => match word {
            "0" => Ok(builder.constant(false)),
            "1" => Ok(builder.constant(true)),
            w => env.get(w).copied().ok_or_else(|| NetlistError::Undefined {
                name: w.to_string(),
            }),
        },
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.bytes().all(|c| c.is_ascii_alphanumeric() || c == b'_')
        && !s.as_bytes()[0].is_ascii_digit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_expressions() {
        let src = "\
circuit maj;
input a b c;
output z;
z = or(and(a, b), and(b, c), and(a, c));
";
        let ckt = parse_pdl("x", src).unwrap();
        assert_eq!(ckt.name(), "maj");
        assert_eq!(ckt.num_inputs(), 3);
        assert_eq!(ckt.num_gates(), 4);
    }

    #[test]
    fn constants_and_unary() {
        let src = "input a; output z; z = and(a, not(0));";
        let ckt = parse_pdl("k", src).unwrap();
        assert_eq!(ckt.num_outputs(), 1);
    }

    #[test]
    fn rejects_forward_reference() {
        let src = "input a; output z; z = not(w); w = buf(a);";
        assert!(matches!(
            parse_pdl("f", src),
            Err(NetlistError::Undefined { .. })
        ));
    }

    #[test]
    fn rejects_redefinition() {
        let src = "input a; output z; z = not(a); z = buf(a);";
        assert!(matches!(
            parse_pdl("d", src),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn rejects_bad_arity() {
        let src = "input a b; output z; z = not(a, b);";
        assert!(matches!(
            parse_pdl("a", src),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let src = "input a; output z; z = not(a) extra;";
        assert!(matches!(
            parse_pdl("t", src),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_undefined_output() {
        let src = "input a; output zz; z = not(a);";
        assert!(matches!(
            parse_pdl("o", src),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn multiple_statements_per_line() {
        let src = "input a; output z; t = not(a); z = buf(t);";
        let ckt = parse_pdl("m", src).unwrap();
        assert_eq!(ckt.num_gates(), 2);
    }
}
