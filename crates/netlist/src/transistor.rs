//! CMOS cost model.
//!
//! The paper reports circuit sizes as transistor counts "based on a CMOS
//! library" (Table 7). This module provides the standard static-CMOS counts
//! so our benchmark harness can report sizes the same way.

use crate::gate::GateKind;
use crate::netlist::Circuit;

/// Transistor count of one gate in a static CMOS library.
///
/// * inverter: 2, buffer: 4 (two inverters)
/// * n-input NAND/NOR: `2n`
/// * n-input AND/OR: `2n + 2` (NAND/NOR plus output inverter)
/// * 2-input XOR/XNOR: 10; each further input adds a cascaded stage (+8)
/// * truth-table components are costed as an AND/OR decomposition estimate:
///   `6 · (2^n / 4)` bounded below by `2n + 2` — a deliberate, documented
///   approximation (the original library costs are unavailable)
/// * inputs and constants: 0
pub fn transistors_for_gate(circuit: &Circuit, kind: GateKind, fanins: usize) -> u64 {
    let n = fanins as u64;
    match kind {
        GateKind::Input | GateKind::Const(_) => 0,
        GateKind::Not => 2,
        GateKind::Buf => 4,
        GateKind::Nand | GateKind::Nor => 2 * n.max(1),
        GateKind::And | GateKind::Or => 2 * n.max(1) + 2,
        GateKind::Xor | GateKind::Xnor => {
            if n <= 1 {
                4
            } else {
                10 + 8 * (n - 2)
            }
        }
        GateKind::Lut(id) => {
            let w = circuit.lut(id).num_inputs() as u64;
            let est = 6 * ((1u64 << w) / 4).max(1);
            est.max(2 * w + 2)
        }
    }
}

/// Total transistor count of a circuit under the CMOS model.
pub fn transistor_count(circuit: &Circuit) -> u64 {
    circuit
        .iter()
        .map(|(_, n)| transistors_for_gate(circuit, n.kind(), n.fanins().len()))
        .sum()
}

/// Gate equivalents (1 GE = one 2-input NAND = 4 transistors), rounded up.
///
/// The paper describes MULT as "built with 1 568 gate equivalents"; this is
/// the matching metric.
pub fn gate_equivalents(circuit: &Circuit) -> u64 {
    transistor_count(circuit).div_ceil(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn counts_sum_over_gates() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let c = b.input("c");
        let x = b.nand2(a, c); // 4
        let y = b.not(x); // 2
        let z = b.xor2(y, a); // 10
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        assert_eq!(transistor_count(&ckt), 16);
        assert_eq!(gate_equivalents(&ckt), 4);
    }

    #[test]
    fn nary_scaling() {
        let mut b = CircuitBuilder::new("c");
        let xs = b.input_bus("x", 4);
        let g = b.and(&xs); // 2*4 + 2 = 10
        b.output(g, "z");
        let ckt = b.finish().unwrap();
        assert_eq!(transistor_count(&ckt), 10);
    }

    #[test]
    fn inputs_cost_nothing() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        b.output(a, "z");
        let ckt = b.finish().unwrap();
        assert_eq!(transistor_count(&ckt), 0);
    }
}
