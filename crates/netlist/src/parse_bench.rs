//! ISCAS-85 `.bench` format parser.
//!
//! The `.bench` dialect accepted here:
//!
//! ```text
//! # comment
//! INPUT(G1)
//! OUTPUT(G17)
//! G17 = NAND(G1, G5)
//! G5  = NOT(G2)
//! ```
//!
//! Gate names: `AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF/BUFF, CONST0, CONST1`
//! (case-insensitive). Definitions may appear in any order; forward
//! references are resolved in a second pass. Sequential elements (`DFF`) are
//! rejected — PROTEST analyzes combinational circuits.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::netlist::{Circuit, CircuitParts, NodeId};

/// Parses ISCAS-85 `.bench` text into a [`Circuit`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines, unknown gate types or
/// sequential elements, [`NetlistError::Undefined`] for signals that are read
/// but never defined, and any [`Circuit::validate`] error (cycles, arity…).
pub fn parse_bench(name: &str, text: &str) -> Result<Circuit, NetlistError> {
    enum Def {
        Input,
        Gate(GateKind, Vec<String>),
    }
    let mut defs: Vec<(String, Def)> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let perr = |message: String| NetlistError::Parse {
            line: lineno,
            message,
        };
        if let Some(rest) = strip_call(line, "INPUT") {
            defs.push((rest.to_string(), Def::Input));
        } else if let Some(rest) = strip_call(line, "OUTPUT") {
            output_names.push(rest.to_string());
        } else if let Some(eq) = line.find('=') {
            let target = line[..eq].trim().to_string();
            let rhs = line[eq + 1..].trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| perr(format!("expected `gate(...)` after `=`: `{rhs}`")))?;
            if !rhs.ends_with(')') {
                return Err(perr(format!("missing `)` in `{rhs}`")));
            }
            let gate_name = rhs[..open].trim().to_ascii_uppercase();
            let args: Vec<String> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let kind = match gate_name.as_str() {
                "AND" => GateKind::And,
                "NAND" => GateKind::Nand,
                "OR" => GateKind::Or,
                "NOR" => GateKind::Nor,
                "XOR" => GateKind::Xor,
                "XNOR" => GateKind::Xnor,
                "NOT" | "INV" => GateKind::Not,
                "BUF" | "BUFF" => GateKind::Buf,
                "CONST0" => GateKind::Const(false),
                "CONST1" => GateKind::Const(true),
                "DFF" | "DFFSR" | "LATCH" => {
                    return Err(perr(format!(
                        "sequential element `{gate_name}` not supported (combinational circuits only)"
                    )));
                }
                other => return Err(perr(format!("unknown gate type `{other}`"))),
            };
            defs.push((target, Def::Gate(kind, args)));
        } else {
            return Err(perr(format!("unrecognized statement `{line}`")));
        }
    }

    // Pass 2: allocate ids in definition order, then resolve references.
    let mut ids: HashMap<&str, NodeId> = HashMap::new();
    for (i, (name, _)) in defs.iter().enumerate() {
        if ids.insert(name.as_str(), NodeId(i as u32)).is_some() {
            return Err(NetlistError::DuplicateName { name: name.clone() });
        }
    }
    let mut parts = CircuitParts::new(name);
    let mut fanins: Vec<NodeId> = Vec::new();
    for (i, (sig, def)) in defs.iter().enumerate() {
        match def {
            Def::Input => {
                parts.inputs.push(NodeId(i as u32));
                parts.push_node(GateKind::Input, &[], Some(sig.clone()));
            }
            Def::Gate(kind, args) => {
                fanins.clear();
                for a in args {
                    fanins.push(
                        ids.get(a.as_str())
                            .copied()
                            .ok_or_else(|| NetlistError::Undefined { name: a.clone() })?,
                    );
                }
                parts.push_node(*kind, &fanins, Some(sig.clone()));
            }
        }
    }
    for out in &output_names {
        let id = ids
            .get(out.as_str())
            .copied()
            .ok_or_else(|| NetlistError::Undefined { name: out.clone() })?;
        parts.outputs.push(id);
        parts.output_names.push(None); // the node itself carries the name
    }
    let circuit = parts.assemble();
    circuit.validate()?;
    Ok(circuit)
}

fn strip_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let upper = line.to_ascii_uppercase();
    if !upper.starts_with(keyword) {
        return None;
    }
    let rest = line[keyword.len()..].trim();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest.trim())
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "\
# c17 — smallest ISCAS-85 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parses_c17() {
        let ckt = parse_bench("c17", C17).unwrap();
        assert_eq!(ckt.num_inputs(), 5);
        assert_eq!(ckt.num_outputs(), 2);
        assert_eq!(ckt.num_gates(), 6);
        assert_eq!(ckt.output_name(0), Some("22"));
    }

    #[test]
    fn forward_references_resolve() {
        let text = "\
INPUT(a)
OUTPUT(z)
z = NOT(y)
y = BUF(a)
";
        let ckt = parse_bench("fwd", text).unwrap();
        assert_eq!(ckt.num_gates(), 2);
    }

    #[test]
    fn rejects_undefined_signal() {
        let text = "INPUT(a)\nOUTPUT(z)\nz = NOT(missing)\n";
        assert!(matches!(
            parse_bench("bad", text),
            Err(NetlistError::Undefined { .. })
        ));
    }

    #[test]
    fn rejects_sequential() {
        let text = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n";
        assert!(matches!(
            parse_bench("seq", text),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_unknown_gate() {
        let text = "INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n";
        assert!(matches!(
            parse_bench("bad", text),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_definition() {
        let text = "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\nz = BUF(a)\n";
        assert!(matches!(
            parse_bench("dup", text),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header\nINPUT(a)  # trailing\n\nOUTPUT(z)\nz = BUF(a)\n";
        assert!(parse_bench("ok", text).is_ok());
    }

    #[test]
    fn rejects_cycle() {
        let text = "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = BUF(x)\n";
        assert!(matches!(
            parse_bench("cyc", text),
            Err(NetlistError::Cycle { .. })
        ));
    }
}
