//! Test-point insertion: structural netlist editing for DFT.
//!
//! The PROTEST analyses report *where* a circuit resists random-pattern
//! testing; acting on that means inserting **test points** and re-analyzing
//! the modified circuit. This module is the editing substrate: it rewrites
//! a [`Circuit`] with a test point inserted, preserving every existing
//! [`NodeId`] (new nodes are appended, never renumbered) so analysis
//! results, fault lists and candidate bookkeeping computed on the original
//! circuit remain addressable on the modified one.
//!
//! Three classic point kinds ([`TestPointKind`]):
//!
//! * **Observe** — a `BUF` from the target net to a fresh primary output
//!   (a pseudo-output): the net becomes fully observable.
//! * **Control-0** — an `AND` of the target net with a fresh primary input
//!   (a pseudo-input): driving the input to 0 forces the net low, and under
//!   weighted random patterns a pseudo-input probability `q` scales the
//!   net's signal probability to `p·q`.
//! * **Control-1** — an `OR` with a fresh pseudo-input: probability shifts
//!   to `1 − (1−p)(1−q)`.
//!
//! Control points take over the driven *net*: every consumer of the target
//! node — gate fanins and primary-output declarations alike — is redirected
//! to the inserted gate, and when the target carries a name the gate
//! inherits it (the original driver is renamed with a `_td<k>` suffix, the
//! way synthesis tools keep the net name on the post-insertion driver).
//! Generated names (`tpo<k>`, `tpc<k>`, `tpg<k>`, `…_td<k>`) are made
//! unique against the circuit's existing names, so writer round-trips stay
//! loss-free.
//!
//! The rewritten circuit is re-validated; levelization ([`crate::Levels`])
//! is derived on demand by consumers, so no stored structure goes stale.

use std::collections::HashSet;
use std::fmt;

use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::netlist::{Circuit, CircuitParts, NodeId};

/// The kind of test point to insert (see the module docs above).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TestPointKind {
    /// Pseudo-output observation point: `tpo = BUF(net)`, `OUTPUT(tpo)`.
    Observe,
    /// Control-0 point: `net' = AND(net, tpc)` with pseudo-input `tpc`.
    ControlZero,
    /// Control-1 point: `net' = OR(net, tpc)` with pseudo-input `tpc`.
    ControlOne,
}

impl TestPointKind {
    /// Whether the point adds a pseudo-input (control points do).
    pub fn is_control(self) -> bool {
        !matches!(self, TestPointKind::Observe)
    }

    /// Short mnemonic used in reports: `obs`, `c0`, `c1`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            TestPointKind::Observe => "obs",
            TestPointKind::ControlZero => "c0",
            TestPointKind::ControlOne => "c1",
        }
    }
}

impl fmt::Display for TestPointKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One requested insertion: a target node and a point kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TestPointSpec {
    /// The net (node output) the point attaches to.
    pub node: NodeId,
    /// What to insert there.
    pub kind: TestPointKind,
}

/// The record of one committed insertion, returned by
/// [`insert_test_point`]. All ids refer to the *modified* circuit; ids of
/// pre-existing nodes are unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertedPoint {
    /// The request this realizes.
    pub spec: TestPointSpec,
    /// The inserted gate: the observation `BUF`, or the control `AND`/`OR`
    /// now driving the target's former consumers.
    pub gate: NodeId,
    /// The fresh pseudo-input (control points only), appended to the end
    /// of the circuit's input list.
    pub control_input: Option<NodeId>,
    /// The fresh pseudo-output's position in the output list (observation
    /// points only).
    pub observe_output: Option<usize>,
    /// The inserted gate's signal name (inherited from the target net for
    /// control points on named nets).
    pub gate_name: String,
    /// The pseudo-input's name (control points only).
    pub control_input_name: Option<String>,
}

/// Inserts one test point, returning the rewritten circuit and the
/// insertion record. See the module docs above for the rewrite rules.
///
/// # Errors
///
/// Returns [`NetlistError::TestPoint`] if the target node does not exist
/// or is a constant (a test point on a constant net is meaningless), and
/// any [`Circuit::validate`] error should the rewrite be invalid (cannot
/// happen for valid inputs; kept as a safety net).
pub fn insert_test_point(
    circuit: &Circuit,
    spec: TestPointSpec,
) -> Result<(Circuit, InsertedPoint), NetlistError> {
    if spec.node.index() >= circuit.num_nodes() {
        return Err(NetlistError::TestPoint {
            message: format!("target node {} does not exist", spec.node),
        });
    }
    if matches!(circuit.node(spec.node).kind(), GateKind::Const(_)) {
        return Err(NetlistError::TestPoint {
            message: format!("target node {} is a constant net", spec.node),
        });
    }
    let mut names: HashSet<String> = circuit.names.iter().flatten().cloned().collect();
    let mut parts = CircuitParts::from_circuit(circuit);
    let target = spec.node;

    let point = match spec.kind {
        TestPointKind::Observe => {
            let name = fresh_name(&mut names, "tpo");
            let gate = parts.push_node(GateKind::Buf, &[target], Some(name.clone()));
            let position = parts.outputs.len();
            parts.outputs.push(gate);
            parts.output_names.push(Some(name.clone()));
            InsertedPoint {
                spec,
                gate,
                control_input: None,
                observe_output: Some(position),
                gate_name: name,
                control_input_name: None,
            }
        }
        TestPointKind::ControlZero | TestPointKind::ControlOne => {
            // The gate inherits the net's name; the original driver gets a
            // `_td<k>` suffix so downstream references keep resolving to
            // the post-insertion net.
            let gate_name = match parts.names[target.index()].take() {
                Some(old) => {
                    let renamed = fresh_name(&mut names, &format!("{old}_td"));
                    parts.names[target.index()] = Some(renamed);
                    old
                }
                None => fresh_name(&mut names, "tpg"),
            };
            let input_name = fresh_name(&mut names, "tpc");
            let ctrl = parts.push_node(GateKind::Input, &[], Some(input_name.clone()));
            parts.inputs.push(ctrl);
            let kind = match spec.kind {
                TestPointKind::ControlZero => GateKind::And,
                _ => GateKind::Or,
            };
            // Redirect every consumer of the target net — gate pins and
            // primary-output declarations — to the inserted gate. The
            // pre-existing fanin CSR prefix covers exactly the consumers
            // that must move; the inserted gate's own pins (appended next)
            // keep reading the original driver.
            let gate_id = NodeId(parts.len() as u32);
            for f in parts.fanin_dat.iter_mut() {
                if *f == target {
                    *f = gate_id;
                }
            }
            let gate = parts.push_node(kind, &[target, ctrl], Some(gate_name.clone()));
            debug_assert_eq!(gate, gate_id);
            for o in parts.outputs.iter_mut() {
                if *o == target {
                    *o = gate;
                }
            }
            InsertedPoint {
                spec,
                gate,
                control_input: Some(ctrl),
                observe_output: None,
                gate_name,
                control_input_name: Some(input_name),
            }
        }
    };

    let modified = parts.assemble();
    modified.validate()?;
    Ok((modified, point))
}

/// Applies a sequence of insertions in order. Because every insertion
/// preserves existing ids, later specs may reference nodes of the original
/// circuit *or* gates inserted by earlier specs in the same batch.
///
/// # Errors
///
/// Propagates the first [`insert_test_point`] error. The result is
/// all-or-nothing: on error the partially modified circuit is discarded,
/// so validate specs up front if a prefix would be worth keeping.
pub fn insert_test_points(
    circuit: &Circuit,
    specs: &[TestPointSpec],
) -> Result<(Circuit, Vec<InsertedPoint>), NetlistError> {
    let mut current = circuit.clone();
    let mut points = Vec::with_capacity(specs.len());
    for &spec in specs {
        let (next, point) = insert_test_point(&current, spec)?;
        current = next;
        points.push(point);
    }
    Ok((current, points))
}

/// Picks `<prefix><k>` for the smallest `k ≥ 0` not yet taken, claiming it.
fn fresh_name(taken: &mut HashSet<String>, prefix: &str) -> String {
    for k in 0.. {
        let candidate = format!("{prefix}{k}");
        if !taken.contains(&candidate) {
            taken.insert(candidate.clone());
            return candidate;
        }
    }
    unreachable!("u64 name counter exhausted")
}

#[cfg(test)]
mod tests {
    use crate::builder::CircuitBuilder;
    use crate::levelize::Levels;

    use super::*;

    fn sample() -> Circuit {
        // a, c → g = AND(a, c) → z = NOT(g); g also feeds w = BUF(g).
        let mut b = CircuitBuilder::new("s");
        let a = b.input("a");
        let c = b.input("c");
        let g = b.and2(a, c);
        b.name(g, "g");
        let z = b.not(g);
        let w = b.buf(g);
        b.output(z, "z");
        b.output(w, "w");
        b.finish().unwrap()
    }

    #[test]
    fn observe_point_adds_pseudo_output() {
        let ckt = sample();
        let g = ckt.find("g").unwrap();
        let (m, p) = insert_test_point(
            &ckt,
            TestPointSpec {
                node: g,
                kind: TestPointKind::Observe,
            },
        )
        .unwrap();
        assert_eq!(m.num_inputs(), ckt.num_inputs());
        assert_eq!(m.num_outputs(), ckt.num_outputs() + 1);
        assert_eq!(p.observe_output, Some(2));
        assert_eq!(m.outputs()[2], p.gate);
        assert_eq!(m.node(p.gate).kind(), GateKind::Buf);
        assert_eq!(m.node(p.gate).fanins(), &[g]);
        // Existing ids and names untouched.
        assert_eq!(m.find("g"), Some(g));
        assert_eq!(m.output_name(2), Some(p.gate_name.as_str()));
    }

    #[test]
    fn control_point_redirects_consumers_and_inherits_name() {
        let ckt = sample();
        let g = ckt.find("g").unwrap();
        let (m, p) = insert_test_point(
            &ckt,
            TestPointSpec {
                node: g,
                kind: TestPointKind::ControlZero,
            },
        )
        .unwrap();
        assert_eq!(m.num_inputs(), ckt.num_inputs() + 1);
        assert_eq!(m.inputs().last(), Some(&p.control_input.unwrap()));
        // The gate took over the net name; the driver got a suffix.
        assert_eq!(p.gate_name, "g");
        assert_eq!(m.find("g"), Some(p.gate));
        assert_eq!(m.node(g).name(), Some("g_td0"));
        // Every former consumer of g now reads the gate.
        for (id, node) in m.iter() {
            if id == p.gate {
                assert_eq!(node.fanins(), &[g, p.control_input.unwrap()]);
            } else {
                assert!(!node.fanins().contains(&g), "{id} still reads the driver");
            }
        }
        assert_eq!(m.node(p.gate).kind(), GateKind::And);
        // Levelization still works on the rewritten DAG.
        let levels = Levels::new(&m);
        assert!(levels.level(p.gate) > levels.level(g));
    }

    #[test]
    fn control_point_redirects_primary_outputs() {
        let mut b = CircuitBuilder::new("po");
        let a = b.input("a");
        let z = b.not(a);
        b.name(z, "z");
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let (m, p) = insert_test_point(
            &ckt,
            TestPointSpec {
                node: z,
                kind: TestPointKind::ControlOne,
            },
        )
        .unwrap();
        assert_eq!(m.outputs(), &[p.gate]);
        assert_eq!(m.node(p.gate).kind(), GateKind::Or);
        assert_eq!(m.output_name(0), Some("z"));
    }

    #[test]
    fn generated_names_avoid_existing_ones() {
        let mut b = CircuitBuilder::new("clash");
        let a = b.input("tpc0");
        let z = b.not(a);
        b.name(z, "tpg0");
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let (m, p) = insert_test_point(
            &ckt,
            TestPointSpec {
                node: a,
                kind: TestPointKind::ControlZero,
            },
        )
        .unwrap();
        assert_eq!(p.control_input_name.as_deref(), Some("tpc1"));
        assert_eq!(p.gate_name, "tpc0"); // inherited from the (named) input net
        assert!(m.validate().is_ok());
    }

    #[test]
    fn batch_insertion_composes() {
        let ckt = sample();
        let g = ckt.find("g").unwrap();
        let specs = [
            TestPointSpec {
                node: g,
                kind: TestPointKind::Observe,
            },
            TestPointSpec {
                node: g,
                kind: TestPointKind::ControlOne,
            },
        ];
        let (m, points) = insert_test_points(&ckt, &specs).unwrap();
        assert_eq!(points.len(), 2);
        // The control gate (second insertion) feeds the observation BUF
        // inserted first: consumers were redirected.
        let buf = points[0].gate;
        assert_eq!(m.node(buf).fanins(), &[points[1].gate]);
    }

    #[test]
    fn rejects_constants_and_bad_ids() {
        let mut b = CircuitBuilder::new("k");
        let a = b.input("a");
        let c = b.constant(true);
        let z = b.and2(a, c);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let bad = TestPointSpec {
            node: c,
            kind: TestPointKind::Observe,
        };
        assert!(matches!(
            insert_test_point(&ckt, bad),
            Err(NetlistError::TestPoint { .. })
        ));
        let oob = TestPointSpec {
            node: NodeId::from_index(99),
            kind: TestPointKind::Observe,
        };
        assert!(matches!(
            insert_test_point(&ckt, oob),
            Err(NetlistError::TestPoint { .. })
        ));
    }
}
