//! Immediate dominators of the fanout graph.
//!
//! A node `d` *dominates* node `n` when every path from `n` to any primary
//! output passes through `d` — i.e. a fault effect originating at `n` can
//! only be observed after traversing `d`. (On the fanout graph, oriented
//! from inputs to outputs, these are the post-dominators with respect to a
//! virtual sink fed by every primary output.)
//!
//! The static-analysis layer uses dominators two ways: as *single-path
//! propagation implications* (a stem whose immediate dominator is a real
//! gate must sensitize that gate to be tested at all), and to widen
//! redundancy proofs (once both stuck-at faults of `d` are proven
//! undetectable, every fault dominated by `d` is undetectable too, without
//! another proof).
//!
//! Computed with the Cooper–Harvey–Kennedy iterative algorithm over the
//! reverse topological order; combinational circuits are acyclic, so a
//! single sweep converges.

use crate::analyze_impl::Fanouts;
use crate::levelize::Levels;
use crate::netlist::{Circuit, NodeId};

/// The virtual sink joining all primary outputs, used as the `idom` of
/// nodes observed directly (or through reconverging paths that only meet
/// at the outputs).
const SINK: u32 = u32::MAX;
/// Marker for nodes with no path to any primary output.
const DEAD: u32 = u32::MAX - 1;

/// Immediate dominators of every node with respect to the primary outputs.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[n]`: immediate dominator node index, `SINK`, or `DEAD`.
    idom: Vec<u32>,
}

impl Dominators {
    /// Computes immediate dominators on the fanout graph of `circuit`.
    pub fn new(circuit: &Circuit, fanouts: &Fanouts) -> Self {
        let n = circuit.num_nodes();
        let levels = Levels::new(circuit);
        // Process nodes in reverse topological order: every fanout of a
        // node is processed before the node itself.
        let order: Vec<NodeId> = levels.order().iter().rev().copied().collect();
        let mut rank = vec![0u32; n];
        for (r, &id) in order.iter().enumerate() {
            rank[id.index()] = r as u32;
        }
        let mut idom = vec![DEAD; n];
        let is_output = {
            let mut v = vec![false; n];
            for &o in circuit.outputs() {
                v[o.index()] = true;
            }
            v
        };
        for &id in &order {
            let mut cur = if is_output[id.index()] {
                Some(SINK)
            } else {
                None
            };
            for &(g, _) in fanouts.of(id) {
                if idom[g.index()] == DEAD {
                    continue; // fanout leads nowhere
                }
                // The candidate dominator contributed by this fanout edge
                // is the successor gate itself.
                cur = Some(match cur {
                    None => g.index() as u32,
                    Some(c) => Self::intersect(&idom, &rank, c, g.index() as u32),
                });
            }
            if let Some(c) = cur {
                idom[id.index()] = c;
            }
        }
        Dominators { idom }
    }

    /// Walks both candidates up their idom chains until they meet
    /// (classic two-finger intersection). Idom links strictly decrease the
    /// reverse-topological rank and terminate at the sink (rank −1), so
    /// raising the farther-from-the-outputs side always converges.
    fn intersect(idom: &[u32], rank: &[u32], mut a: u32, mut b: u32) -> u32 {
        let r = |x: u32| {
            if x == SINK {
                -1i64
            } else {
                rank[x as usize] as i64
            }
        };
        while a != b {
            if r(a) > r(b) {
                a = idom[a as usize];
            } else {
                b = idom[b as usize];
            }
        }
        a
    }

    /// The immediate dominator of `id`: `Some(node)` when a single gate
    /// post-dominates it, `None` when it is dominated only by the virtual
    /// output sink (a primary output, or reconvergence meeting only at the
    /// outputs) or has no path to an output at all.
    pub fn idom(&self, id: NodeId) -> Option<NodeId> {
        match self.idom[id.index()] {
            SINK | DEAD => None,
            d => Some(NodeId::from_index(d as usize)),
        }
    }

    /// Whether `id` reaches any primary output at all.
    pub fn reaches_output(&self, id: NodeId) -> bool {
        self.idom[id.index()] != DEAD
    }

    /// Iterates the strict dominator chain of `id`, nearest first,
    /// stopping at the virtual sink.
    pub fn chain(&self, id: NodeId) -> DominatorChain<'_> {
        DominatorChain {
            doms: self,
            cur: self.idom[id.index()],
        }
    }

    /// Whether `d` dominates `n` (strictly; a node does not dominate
    /// itself here).
    pub fn dominates(&self, d: NodeId, n: NodeId) -> bool {
        self.chain(n).any(|x| x == d)
    }
}

/// Iterator over a node's strict dominators, nearest first.
#[derive(Debug)]
pub struct DominatorChain<'a> {
    doms: &'a Dominators,
    cur: u32,
}

impl Iterator for DominatorChain<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        match self.cur {
            SINK | DEAD => None,
            d => {
                self.cur = self.doms.idom[d as usize];
                Some(NodeId::from_index(d as usize))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn chain_of_gates_dominates_linearly() {
        // a -> n1 -> n2 -> z (PO): idom(a) = n1, idom(n1) = n2, idom(n2) = sink.
        let mut b = CircuitBuilder::new("chain");
        let a = b.input("a");
        let n1 = b.not(a);
        let n2 = b.not(n1);
        b.output(n2, "z");
        let ckt = b.finish().unwrap();
        let fanouts = Fanouts::new(&ckt);
        let doms = Dominators::new(&ckt, &fanouts);
        assert_eq!(doms.idom(a), Some(n1));
        assert_eq!(doms.idom(n1), Some(n2));
        assert_eq!(doms.idom(n2), None);
        assert!(doms.dominates(n2, a));
        assert_eq!(doms.chain(a).collect::<Vec<_>>(), vec![n1, n2]);
    }

    #[test]
    fn reconvergence_is_dominated_by_the_merge_gate() {
        // a fans out to two NOTs that reconverge in one AND -> z.
        let mut b = CircuitBuilder::new("reconv");
        let a = b.input("a");
        let n1 = b.not(a);
        let n2 = b.not(a);
        let z = b.and2(n1, n2);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let fanouts = Fanouts::new(&ckt);
        let doms = Dominators::new(&ckt, &fanouts);
        assert_eq!(doms.idom(a), Some(z), "both paths meet at the AND");
        assert_eq!(doms.idom(n1), Some(z));
        assert_eq!(doms.idom(z), None);
    }

    #[test]
    fn multi_output_stems_have_no_gate_dominator() {
        // a feeds a NOT observed at z1 and is itself observed at z2.
        let mut b = CircuitBuilder::new("po");
        let a = b.input("a");
        let n = b.not(a);
        b.output(n, "z1");
        b.output(a, "z2");
        let ckt = b.finish().unwrap();
        let fanouts = Fanouts::new(&ckt);
        let doms = Dominators::new(&ckt, &fanouts);
        assert_eq!(doms.idom(a), None, "direct observation bypasses the NOT");
        assert!(doms.reaches_output(a));
    }

    #[test]
    fn dead_nodes_are_flagged() {
        let mut b = CircuitBuilder::new("dead");
        let a = b.input("a");
        let c = b.input("c");
        let dead = b.and2(a, c); // never consumed, not an output
        let _ = dead;
        let z = b.not(a);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let fanouts = Fanouts::new(&ckt);
        let doms = Dominators::new(&ckt, &fanouts);
        assert!(!doms.reaches_output(dead));
        assert!(doms.reaches_output(a));
        // `c` only feeds the dead gate: no output path, no dominator.
        assert!(!doms.reaches_output(c));
        assert_eq!(doms.idom(c), None);
    }
}
