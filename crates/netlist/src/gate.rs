use std::fmt;

use crate::error::NetlistError;

/// Identifier of an interned [`TruthTable`] inside a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LutId(pub(crate) u32);

impl LutId {
    /// The raw index into the circuit's truth-table store.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LutId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lut{}", self.0)
    }
}

/// The logic function computed by a node.
///
/// The standard gates are n-ary where that makes sense (`And`, `Or`, …, with
/// at least one fanin; a single-fanin `And` behaves as a buffer). Arbitrary
/// boolean functions — the paper admits "combinational circuits with arbitrary
/// boolean functions as basic components" — are expressed as interned truth
/// tables via [`GateKind::Lut`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input (no fanins).
    Input,
    /// Constant 0 or 1 (no fanins).
    Const(bool),
    /// Identity (1 fanin).
    Buf,
    /// Negation (1 fanin).
    Not,
    /// n-ary conjunction (≥ 1 fanin).
    And,
    /// n-ary NAND (≥ 1 fanin).
    Nand,
    /// n-ary disjunction (≥ 1 fanin).
    Or,
    /// n-ary NOR (≥ 1 fanin).
    Nor,
    /// n-ary parity (≥ 1 fanin).
    Xor,
    /// n-ary complemented parity (≥ 1 fanin).
    Xnor,
    /// Arbitrary function given by an interned truth table.
    Lut(LutId),
}

impl GateKind {
    /// Short lowercase mnemonic (used by writers and `Display`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::Input => "input",
            GateKind::Const(false) => "const0",
            GateKind::Const(true) => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Nand => "nand",
            GateKind::Or => "or",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Lut(_) => "lut",
        }
    }

    /// Whether `n` fanins is a legal arity for this gate kind.
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateKind::Input | GateKind::Const(_) => n == 0,
            GateKind::Buf | GateKind::Not => n == 1,
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => n >= 1,
            // Checked against the table's declared width during validation.
            GateKind::Lut(_) => n >= 1,
        }
    }

    /// Human-readable arity description for error messages.
    pub(crate) fn arity_expected(self) -> &'static str {
        match self {
            GateKind::Input | GateKind::Const(_) => "0",
            GateKind::Buf | GateKind::Not => "1",
            _ => "at least 1",
        }
    }

    /// Bit-parallel evaluation of the gate over 64-pattern words.
    ///
    /// `fanin_words[i]` holds the value of fanin `i` for each of 64 patterns.
    /// Truth-table gates must be evaluated through
    /// [`TruthTable::eval_words`]; calling this with `Lut` panics.
    ///
    /// # Panics
    ///
    /// Panics if `self` is [`GateKind::Lut`] or if the arity is invalid for
    /// the kind (e.g. an empty fanin list for `And`).
    pub fn eval_words(self, fanin_words: &[u64]) -> u64 {
        match self {
            GateKind::Input => panic!("primary inputs are not evaluated"),
            GateKind::Const(false) => 0,
            GateKind::Const(true) => !0,
            GateKind::Buf => fanin_words[0],
            GateKind::Not => !fanin_words[0],
            GateKind::And => fanin_words.iter().fold(!0u64, |acc, w| acc & w),
            GateKind::Nand => !fanin_words.iter().fold(!0u64, |acc, w| acc & w),
            GateKind::Or => fanin_words.iter().fold(0u64, |acc, w| acc | w),
            GateKind::Nor => !fanin_words.iter().fold(0u64, |acc, w| acc | w),
            GateKind::Xor => fanin_words.iter().fold(0u64, |acc, w| acc ^ w),
            GateKind::Xnor => !fanin_words.iter().fold(0u64, |acc, w| acc ^ w),
            GateKind::Lut(_) => {
                panic!("truth-table gates are evaluated via TruthTable::eval_words")
            }
        }
    }

    /// Scalar evaluation over `bool` fanins (convenience for tests and small
    /// evaluators).
    ///
    /// # Panics
    ///
    /// Same conditions as [`GateKind::eval_words`].
    pub fn eval_bools(self, fanins: &[bool]) -> bool {
        let words: Vec<u64> = fanins.iter().map(|&b| if b { !0 } else { 0 }).collect();
        self.eval_words(&words) & 1 == 1
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A truth table over up to 16 inputs, bit-packed 64 minterms per word.
///
/// Minterm index `m` is formed with fanin 0 as the least significant bit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    inputs: u8,
    words: Vec<u64>,
}

impl TruthTable {
    /// Maximum supported number of inputs.
    pub const MAX_INPUTS: usize = 16;

    /// Creates a table for `inputs` variables from packed minterm words.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::LutWidth`] if `inputs` is 0 or greater than
    /// [`TruthTable::MAX_INPUTS`], or if `words` has the wrong length
    /// (`max(1, 2^inputs / 64)` words; unused high bits of the last word are
    /// ignored and canonicalized to zero).
    pub fn from_words(inputs: usize, mut words: Vec<u64>) -> Result<Self, NetlistError> {
        if inputs == 0 || inputs > Self::MAX_INPUTS {
            return Err(NetlistError::LutWidth { inputs });
        }
        let expect = Self::word_count(inputs);
        if words.len() != expect {
            return Err(NetlistError::LutWidth { inputs });
        }
        let minterms = 1usize << inputs;
        if minterms < 64 {
            let mask = (1u64 << minterms) - 1;
            words[0] &= mask;
        }
        Ok(TruthTable {
            inputs: inputs as u8,
            words,
        })
    }

    /// Builds a table by evaluating `f` on every minterm.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::LutWidth`] for unsupported widths.
    pub fn from_fn<F: FnMut(usize) -> bool>(inputs: usize, mut f: F) -> Result<Self, NetlistError> {
        if inputs == 0 || inputs > Self::MAX_INPUTS {
            return Err(NetlistError::LutWidth { inputs });
        }
        let minterms = 1usize << inputs;
        let mut words = vec![0u64; Self::word_count(inputs)];
        for m in 0..minterms {
            if f(m) {
                words[m / 64] |= 1u64 << (m % 64);
            }
        }
        Ok(TruthTable {
            inputs: inputs as u8,
            words,
        })
    }

    fn word_count(inputs: usize) -> usize {
        (1usize << inputs).div_ceil(64)
    }

    /// Number of inputs of the function.
    pub fn num_inputs(&self) -> usize {
        self.inputs as usize
    }

    /// Value of the function at minterm `m` (fanin 0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^inputs`.
    pub fn bit(&self, m: usize) -> bool {
        assert!(m < (1usize << self.inputs), "minterm out of range");
        (self.words[m / 64] >> (m % 64)) & 1 == 1
    }

    /// Bit-parallel evaluation over 64-pattern fanin words.
    ///
    /// # Panics
    ///
    /// Panics if `fanin_words.len() != self.num_inputs()`.
    pub fn eval_words(&self, fanin_words: &[u64]) -> u64 {
        assert_eq!(
            fanin_words.len(),
            self.inputs as usize,
            "truth table arity mismatch"
        );
        let mut out = 0u64;
        for pat in 0..64 {
            let mut m = 0usize;
            for (i, w) in fanin_words.iter().enumerate() {
                m |= (((w >> pat) & 1) as usize) << i;
            }
            if self.bit(m) {
                out |= 1u64 << pat;
            }
        }
        out
    }

    /// Recognizes the standard gate this table computes, if any.
    ///
    /// Used by the BLIF reader/writer to normalize covers: a table that is
    /// exactly an `AND`/`NAND`/`OR`/`NOR`/`XOR`/`XNOR` over its inputs (or
    /// `BUF`/`NOT` for one input) is represented as that [`GateKind`]
    /// instead of a LUT, so downstream analysis sees ordinary gates and
    /// serialization is canonical. Tables that fix the output regardless
    /// of the input (constants *with* fanins) return `None` — collapsing
    /// them to [`GateKind::Const`] would drop the fanin edges.
    pub fn as_standard_gate(&self) -> Option<GateKind> {
        let n = self.inputs as usize;
        let minterms = 1usize << n;
        if n == 1 {
            return match (self.bit(0), self.bit(1)) {
                (false, true) => Some(GateKind::Buf),
                (true, false) => Some(GateKind::Not),
                _ => None,
            };
        }
        let ones = self.ones() as usize;
        if ones == 1 {
            if self.bit(minterms - 1) {
                return Some(GateKind::And);
            }
            if self.bit(0) {
                return Some(GateKind::Nor);
            }
        }
        if ones == minterms - 1 {
            if !self.bit(minterms - 1) {
                return Some(GateKind::Nand);
            }
            if !self.bit(0) {
                return Some(GateKind::Or);
            }
        }
        if ones == minterms / 2 {
            if (0..minterms).all(|m| self.bit(m) == (m.count_ones() & 1 == 1)) {
                return Some(GateKind::Xor);
            }
            if (0..minterms).all(|m| self.bit(m) == (m.count_ones() & 1 == 0)) {
                return Some(GateKind::Xnor);
            }
        }
        None
    }

    /// Number of minterms on which the function is 1.
    pub fn ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// The packed minterm words (fanin 0 = LSB of the minterm index).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_gate_eval() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        assert_eq!(GateKind::And.eval_words(&[a, b]) & 0xF, 0b1000);
        assert_eq!(GateKind::Or.eval_words(&[a, b]) & 0xF, 0b1110);
        assert_eq!(GateKind::Xor.eval_words(&[a, b]) & 0xF, 0b0110);
        assert_eq!(GateKind::Nand.eval_words(&[a, b]) & 0xF, 0b0111);
        assert_eq!(GateKind::Nor.eval_words(&[a, b]) & 0xF, 0b0001);
        assert_eq!(GateKind::Xnor.eval_words(&[a, b]) & 0xF, 0b1001);
        assert_eq!(GateKind::Not.eval_words(&[a]) & 0xF, 0b0011);
        assert_eq!(GateKind::Buf.eval_words(&[a]) & 0xF, 0b1100);
        assert_eq!(GateKind::Const(true).eval_words(&[]), !0);
        assert_eq!(GateKind::Const(false).eval_words(&[]), 0);
    }

    #[test]
    fn nary_gates() {
        let ws = [0b1111u64, 0b1100, 0b1010];
        assert_eq!(GateKind::And.eval_words(&ws) & 0xF, 0b1000);
        assert_eq!(GateKind::Or.eval_words(&ws) & 0xF, 0b1111);
        assert_eq!(GateKind::Xor.eval_words(&ws) & 0xF, 0b1001);
    }

    #[test]
    fn single_fanin_degenerates() {
        let a = 0b0110u64;
        assert_eq!(GateKind::And.eval_words(&[a]), a);
        assert_eq!(GateKind::Or.eval_words(&[a]), a);
        assert_eq!(GateKind::Xor.eval_words(&[a]), a);
        assert_eq!(GateKind::Nand.eval_words(&[a]), !a);
    }

    #[test]
    fn truth_table_majority() {
        let maj = TruthTable::from_fn(3, |m| (m.count_ones()) >= 2).unwrap();
        assert_eq!(maj.num_inputs(), 3);
        assert_eq!(maj.ones(), 4);
        assert!(!maj.bit(0b001));
        assert!(maj.bit(0b011));
        let a = 0b1100u64;
        let b = 0b1010u64;
        let c = 0b0110u64;
        // patterns (bit position p): p0: a=0,b=0,c=0 -> 0; p1: a=0,b=1,c=1 -> 1;
        // p2: a=1,b=0,c=1 -> 1; p3: a=1,b=1,c=0 -> 1.
        assert_eq!(maj.eval_words(&[a, b, c]) & 0xF, 0b1110);
    }

    #[test]
    fn truth_table_word_roundtrip() {
        let t = TruthTable::from_words(2, vec![0b0110]).unwrap();
        assert!(!t.bit(0));
        assert!(t.bit(1));
        assert!(t.bit(2));
        assert!(!t.bit(3));
        // XOR2 behaviour.
        assert_eq!(t.eval_words(&[0b1100, 0b1010]) & 0xF, 0b0110);
    }

    #[test]
    fn truth_table_rejects_bad_width() {
        assert!(TruthTable::from_fn(0, |_| false).is_err());
        assert!(TruthTable::from_fn(17, |_| false).is_err());
        assert!(TruthTable::from_words(2, vec![0, 0]).is_err());
    }

    #[test]
    fn truth_table_canonicalizes_unused_bits() {
        let t = TruthTable::from_words(2, vec![!0u64]).unwrap();
        assert_eq!(t.words()[0], 0xF);
        assert_eq!(t.ones(), 4);
    }

    #[test]
    fn standard_gate_recognition() {
        let tt = |n: usize, k: GateKind| {
            TruthTable::from_fn(n, |m| {
                let ws: Vec<u64> = (0..n).map(|i| ((m >> i) & 1) as u64 * !0).collect();
                k.eval_words(&ws) & 1 == 1
            })
            .unwrap()
        };
        for n in [2usize, 3, 5] {
            for k in [
                GateKind::And,
                GateKind::Nand,
                GateKind::Or,
                GateKind::Nor,
                GateKind::Xor,
                GateKind::Xnor,
            ] {
                assert_eq!(tt(n, k).as_standard_gate(), Some(k), "{k} over {n}");
            }
        }
        assert_eq!(tt(1, GateKind::Buf).as_standard_gate(), Some(GateKind::Buf));
        assert_eq!(tt(1, GateKind::Not).as_standard_gate(), Some(GateKind::Not));
        // Majority-of-3 is none of the standard gates.
        let maj = TruthTable::from_fn(3, |m| m.count_ones() >= 2).unwrap();
        assert_eq!(maj.as_standard_gate(), None);
        // Constants with fanins stay unrecognized (would drop edges).
        let k0 = TruthTable::from_fn(2, |_| false).unwrap();
        let k1 = TruthTable::from_fn(1, |_| true).unwrap();
        assert_eq!(k0.as_standard_gate(), None);
        assert_eq!(k1.as_standard_gate(), None);
    }

    #[test]
    fn arity_checks() {
        assert!(GateKind::Input.arity_ok(0));
        assert!(!GateKind::Input.arity_ok(1));
        assert!(GateKind::Not.arity_ok(1));
        assert!(!GateKind::Not.arity_ok(2));
        assert!(GateKind::And.arity_ok(5));
        assert!(!GateKind::And.arity_ok(0));
    }
}
