//! Berkeley Logic Interchange Format (BLIF) parser.
//!
//! The combinational BLIF subset accepted here:
//!
//! ```text
//! .model c17
//! .inputs a b c
//! .outputs z
//! .names a b t    # single-output cover: last signal is the target
//! 11 1
//! .names t c z
//! 0- 1
//! -0 1
//! .end
//! ```
//!
//! Cover rows use the usual `0`/`1`/`-` input plane and a `0`/`1` output
//! column; all rows of one cover must share the same output polarity
//! (ON-set or OFF-set form). A `.names` with a single signal defines a
//! constant. Long statements may be continued with a trailing `\`.
//!
//! Covers that spell a standard gate (single all-`1` or all-`0` cube,
//! parity, single-literal forms) are recognized *structurally* and become
//! the matching [`GateKind`] so downstream analysis sees ordinary gates;
//! anything else is interned as a truth-table component
//! ([`GateKind::Lut`]), which limits general covers to
//! [`TruthTable::MAX_INPUTS`] inputs. Wide AND/NAND/OR/NOR covers are
//! recognized before table expansion and have no width limit.
//!
//! Sequential elements (`.latch`, `.mlatch`) and hierarchy (`.subckt`,
//! `.gate`) are rejected — PROTEST analyzes flat combinational circuits.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::gate::{GateKind, LutId, TruthTable};
use crate::netlist::{Circuit, CircuitParts, NodeId};

/// Parses combinational BLIF text into a [`Circuit`].
///
/// `name` is used when the text has no `.model` line; otherwise the model
/// name wins.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed statements, sequential or
/// hierarchical constructs, [`NetlistError::Undefined`] for signals read
/// but never defined, [`NetlistError::DuplicateName`] for double
/// definitions, [`NetlistError::LutWidth`] for general covers wider than
/// [`TruthTable::MAX_INPUTS`], and any [`Circuit::validate`] error.
pub fn parse_blif(name: &str, text: &str) -> Result<Circuit, NetlistError> {
    struct Cover {
        fanin_names: Vec<String>,
        cubes: Vec<String>,
        /// Output polarity of the rows seen so far (`None` until the first).
        on_set: Option<bool>,
    }
    enum Def {
        Input,
        Cover(Cover),
    }

    let mut model: Option<String> = None;
    let mut defs: Vec<(String, Def)> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();
    let mut current: Option<usize> = None;

    for (lineno, line) in logical_lines(text) {
        let perr = |message: String| NetlistError::Parse {
            line: lineno,
            message,
        };
        let mut tokens = line.split_whitespace();
        let head = tokens.next().expect("logical lines are nonempty");
        if let Some(directive) = head.strip_prefix('.') {
            match directive {
                "model" => {
                    if model.is_some() {
                        return Err(perr("multiple .model statements".into()));
                    }
                    model = Some(tokens.next().unwrap_or(name).to_string());
                }
                "inputs" => {
                    for t in tokens {
                        defs.push((t.to_string(), Def::Input));
                    }
                    current = None;
                }
                "outputs" => {
                    output_names.extend(tokens.map(str::to_string));
                    current = None;
                }
                "names" => {
                    let mut sigs: Vec<String> = tokens.map(str::to_string).collect();
                    let target = sigs
                        .pop()
                        .ok_or_else(|| perr(".names needs at least one signal".into()))?;
                    current = Some(defs.len());
                    defs.push((
                        target,
                        Def::Cover(Cover {
                            fanin_names: sigs,
                            cubes: Vec::new(),
                            on_set: None,
                        }),
                    ));
                }
                "end" => break,
                "latch" | "mlatch" => {
                    return Err(perr(format!(
                        "sequential element `.{directive}` not supported (combinational circuits only)"
                    )));
                }
                "subckt" | "gate" => {
                    return Err(perr(format!(
                        "hierarchical construct `.{directive}` not supported (flatten first)"
                    )));
                }
                // Don't choke on harmless metadata some writers emit.
                "default_input_arrival"
                | "default_output_required"
                | "area"
                | "delay"
                | "wire_load_slope"
                | "wire"
                | "input_arrival"
                | "output_required" => {
                    current = None;
                }
                other => {
                    return Err(perr(format!("unsupported directive `.{other}`")));
                }
            }
        } else {
            // A cover row for the open `.names`.
            let Some(idx) = current else {
                return Err(perr(format!("cover row `{line}` outside .names")));
            };
            let Def::Cover(cover) = &mut defs[idx].1 else {
                unreachable!("current always indexes a cover def");
            };
            let n = cover.fanin_names.len();
            let (cube, out) = if n == 0 {
                if tokens.next().is_some() || head.len() != 1 {
                    return Err(perr(format!(
                        "constant cover row must be `0` or `1`: `{line}`"
                    )));
                }
                (String::new(), head)
            } else {
                let out = tokens
                    .next()
                    .ok_or_else(|| perr(format!("cover row missing output column: `{line}`")))?;
                if tokens.next().is_some() {
                    return Err(perr(format!("too many columns in cover row `{line}`")));
                }
                if head.len() != n || !head.bytes().all(|c| matches!(c, b'0' | b'1' | b'-')) {
                    return Err(perr(format!(
                        "input plane `{head}` must be {n} characters of 0/1/-"
                    )));
                }
                (head.to_string(), out)
            };
            let on = match out {
                "1" => true,
                "0" => false,
                other => return Err(perr(format!("output column must be 0 or 1, got `{other}`"))),
            };
            match cover.on_set {
                None => cover.on_set = Some(on),
                Some(prev) if prev != on => {
                    return Err(perr("mixed output polarity in one cover".into()));
                }
                Some(_) => {}
            }
            cover.cubes.push(cube);
        }
    }

    // Pass 2: allocate ids in definition order, then resolve references.
    let mut ids: HashMap<&str, NodeId> = HashMap::new();
    for (i, (sig, _)) in defs.iter().enumerate() {
        if ids.insert(sig.as_str(), NodeId(i as u32)).is_some() {
            return Err(NetlistError::DuplicateName { name: sig.clone() });
        }
    }
    let mut parts = CircuitParts::new(model.unwrap_or_else(|| name.to_string()));
    let mut fanins: Vec<NodeId> = Vec::new();
    for (i, (sig, def)) in defs.iter().enumerate() {
        match def {
            Def::Input => {
                parts.inputs.push(NodeId(i as u32));
                parts.push_node(GateKind::Input, &[], Some(sig.clone()));
            }
            Def::Cover(cover) => {
                fanins.clear();
                for a in &cover.fanin_names {
                    fanins.push(
                        ids.get(a.as_str())
                            .copied()
                            .ok_or_else(|| NetlistError::Undefined { name: a.clone() })?,
                    );
                }
                let n = cover.fanin_names.len();
                let on = cover.on_set.unwrap_or(true);
                let kind = if n == 0 {
                    GateKind::Const(on && !cover.cubes.is_empty())
                } else if let Some(kind) = classify_cover(n, &cover.cubes, on) {
                    kind
                } else {
                    let table = cover_to_table(n, &cover.cubes, on)?;
                    match table.as_standard_gate() {
                        Some(kind) => kind,
                        None => GateKind::Lut(intern_table(&mut parts.luts, table)),
                    }
                };
                parts.push_node(kind, &fanins, Some(sig.clone()));
            }
        }
    }
    for out in &output_names {
        let id = ids
            .get(out.as_str())
            .copied()
            .ok_or_else(|| NetlistError::Undefined { name: out.clone() })?;
        parts.outputs.push(id);
        parts.output_names.push(None); // the node itself carries the name
    }
    let circuit = parts.assemble();
    circuit.validate()?;
    Ok(circuit)
}

/// Joins `\`-continued lines, strips comments, and drops blanks. Returns
/// `(1-based first line number, logical line)` pairs.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut continued = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim_end();
        let (body, continues) = match line.strip_suffix('\\') {
            Some(b) => (b, true),
            None => (line, false),
        };
        if continued {
            let last = out.last_mut().expect("continuation follows a line");
            last.1.push(' ');
            last.1.push_str(body);
        } else {
            out.push((i + 1, body.to_string()));
        }
        continued = continues;
    }
    out.retain(|(_, l)| !l.trim().is_empty());
    out
}

/// Structural recognition of single-cube covers — works at any width, so
/// a 64-input AND never hits the truth-table expansion path.
fn classify_cover(n: usize, cubes: &[String], on: bool) -> Option<GateKind> {
    if cubes.len() != 1 {
        return None;
    }
    let cube = cubes[0].as_bytes();
    let all1 = cube.iter().all(|&c| c == b'1');
    let all0 = cube.iter().all(|&c| c == b'0');
    if n == 1 {
        return match (all1, all0, on) {
            (true, _, true) | (_, true, false) => Some(GateKind::Buf),
            (_, true, true) | (true, _, false) => Some(GateKind::Not),
            _ => None, // `-` plane: a constant with a fanin; keep as table
        };
    }
    match (all1, all0, on) {
        (true, _, true) => Some(GateKind::And),
        (true, _, false) => Some(GateKind::Nand),
        (_, true, false) => Some(GateKind::Or),
        (_, true, true) => Some(GateKind::Nor),
        _ => None,
    }
}

/// Expands a cover into a truth table (`on == false` means the rows list
/// the OFF-set).
fn cover_to_table(n: usize, cubes: &[String], on: bool) -> Result<TruthTable, NetlistError> {
    TruthTable::from_fn(n, |m| {
        let hit = cubes.iter().any(|cube| {
            cube.bytes()
                .enumerate()
                .all(|(i, c)| c == b'-' || (c == b'1') == ((m >> i) & 1 == 1))
        });
        hit == on
    })
}

/// Interns `table` in the circuit's store, reusing an existing id for an
/// identical table (mirrors `CircuitBuilder::add_table`).
fn intern_table(luts: &mut Vec<TruthTable>, table: TruthTable) -> LutId {
    if let Some(i) = luts.iter().position(|t| *t == table) {
        return LutId(i as u32);
    }
    let id = LutId(luts.len() as u32);
    luts.push(table);
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17_BLIF: &str = "\
.model c17
.inputs 1 2 3 6 7
.outputs 22 23
.names 1 3 10
11 0
.names 3 6 11
11 0
.names 2 11 16
11 0
.names 11 7 19
11 0
.names 10 16 22
11 0
.names 16 19 23
11 0
.end
";

    #[test]
    fn parses_c17() {
        let ckt = parse_blif("c17", C17_BLIF).unwrap();
        assert_eq!(ckt.name(), "c17");
        assert_eq!(ckt.num_inputs(), 5);
        assert_eq!(ckt.num_outputs(), 2);
        assert_eq!(ckt.num_gates(), 6);
        // `11 0` single-cube OFF-set covers classify as NAND.
        let out = ckt.outputs()[0];
        assert_eq!(ckt.node(out).kind(), GateKind::Nand);
    }

    #[test]
    fn classifies_standard_gates() {
        let text = "\
.model gates
.inputs a b
.outputs z
.names a b and2
11 1
.names a b or2
1- 1
-1 1
.names a b nor2
00 1
.names a b xor2
01 1
10 1
.names a inv
0 1
.names and2 or2 nor2 xor2 inv z
11111 1
.end
";
        let ckt = parse_blif("gates", text).unwrap();
        let kind = |n: &str| ckt.node(ckt.find(n).unwrap()).kind();
        assert_eq!(kind("and2"), GateKind::And);
        assert_eq!(kind("or2"), GateKind::Or);
        assert_eq!(kind("nor2"), GateKind::Nor);
        assert_eq!(kind("xor2"), GateKind::Xor);
        assert_eq!(kind("inv"), GateKind::Not);
        assert_eq!(kind("z"), GateKind::And);
    }

    #[test]
    fn wide_and_skips_table_expansion() {
        // 20 inputs > TruthTable::MAX_INPUTS — must classify structurally.
        let n = 20;
        let sigs: Vec<String> = (0..n).map(|i| format!("x{i}")).collect();
        let text = format!(
            ".model wide\n.inputs {}\n.outputs z\n.names {} z\n{} 1\n.end\n",
            sigs.join(" "),
            sigs.join(" "),
            "1".repeat(n)
        );
        let ckt = parse_blif("wide", &text).unwrap();
        let z = ckt.find("z").unwrap();
        assert_eq!(ckt.node(z).kind(), GateKind::And);
        assert_eq!(ckt.node(z).fanins().len(), n);
    }

    #[test]
    fn general_cover_becomes_truth_table() {
        let text = "\
.model lut
.inputs a b c
.outputs z
.names a b c z
11- 1
001 1
.end
";
        let ckt = parse_blif("lut", text).unwrap();
        let z = ckt.find("z").unwrap();
        let GateKind::Lut(id) = ckt.node(z).kind() else {
            panic!("expected a truth-table component");
        };
        let tt = ckt.lut(id);
        assert!(tt.bit(0b011)); // a=1,b=1,c=0
        assert!(tt.bit(0b111)); // a=1,b=1,c=1
        assert!(tt.bit(0b100)); // a=0,b=0,c=1
        assert_eq!(tt.ones(), 3);
    }

    #[test]
    fn constants_and_continuations() {
        let text = "\
.model k
.inputs a \\
        b
.outputs z one
.names one
1
.names zero
.names a b zero z
110 1
.end
";
        let ckt = parse_blif("k", text).unwrap();
        assert_eq!(ckt.num_inputs(), 2);
        let one = ckt.find("one").unwrap();
        let zero = ckt.find("zero").unwrap();
        assert_eq!(ckt.node(one).kind(), GateKind::Const(true));
        assert_eq!(ckt.node(zero).kind(), GateKind::Const(false));
    }

    #[test]
    fn rejects_latch() {
        let text = ".model s\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n";
        assert!(matches!(
            parse_blif("s", text),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_subckt() {
        let text = ".model h\n.inputs a\n.outputs z\n.subckt sub x=a y=z\n.end\n";
        assert!(matches!(
            parse_blif("h", text),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_undefined_signal() {
        let text = ".model u\n.inputs a\n.outputs z\n.names a missing z\n11 1\n.end\n";
        assert!(matches!(
            parse_blif("u", text),
            Err(NetlistError::Undefined { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_definition() {
        let text = ".model d\n.inputs a\n.outputs z\n.names a z\n1 1\n.names a z\n0 1\n.end\n";
        assert!(matches!(
            parse_blif("d", text),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn rejects_mixed_polarity() {
        let text = ".model m\n.inputs a b\n.outputs z\n.names a b z\n11 1\n00 0\n.end\n";
        assert!(matches!(
            parse_blif("m", text),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_bad_plane_width() {
        let text = ".model w\n.inputs a b\n.outputs z\n.names a b z\n1 1\n.end\n";
        assert!(matches!(
            parse_blif("w", text),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_cycle() {
        let text = "\
.model c
.inputs a
.outputs x
.names a y x
11 1
.names x y
1 1
.end
";
        assert!(matches!(
            parse_blif("c", text),
            Err(NetlistError::Cycle { .. })
        ));
    }

    #[test]
    fn model_name_falls_back_to_argument() {
        let text = ".inputs a\n.outputs z\n.names a z\n1 1\n";
        let ckt = parse_blif("fallback", text).unwrap();
        assert_eq!(ckt.name(), "fallback");
    }
}
