use crate::netlist::NodeId;

/// A dense bitset over the node ids of one circuit.
///
/// Used pervasively by cone extraction, reconvergence analysis and the fault
/// simulator, where `HashSet<NodeId>` churn would dominate runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// Creates an empty set able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        NodeSet {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of ids the set can hold.
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `id`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `id` exceeds the capacity.
    pub fn insert(&mut self, id: NodeId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `id`; returns `true` if it was present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            self.words[w] &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Membership test.
    pub fn contains(&self, id: NodeId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Removes all members (O(capacity/64)).
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Iterates members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(NodeId::from_index(wi * 64 + b))
                }
            })
        })
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let items: Vec<NodeId> = iter.into_iter().collect();
        let cap = items.iter().map(|i| i.index() + 1).max().unwrap_or(0);
        let mut set = NodeSet::new(cap);
        for i in items {
            set.insert(i);
        }
        set
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<T: IntoIterator<Item = NodeId>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new(200);
        assert!(s.insert(NodeId::from_index(3)));
        assert!(!s.insert(NodeId::from_index(3)));
        assert!(s.insert(NodeId::from_index(130)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId::from_index(3)));
        assert!(!s.contains(NodeId::from_index(4)));
        assert!(s.remove(NodeId::from_index(3)));
        assert!(!s.remove(NodeId::from_index(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iterates_in_order() {
        let ids = [5usize, 64, 65, 190];
        let s: NodeSet = ids.iter().map(|&i| NodeId::from_index(i)).collect();
        let got: Vec<usize> = s.iter().map(|i| i.index()).collect();
        assert_eq!(got, ids);
    }

    #[test]
    fn clear_resets() {
        let mut s = NodeSet::new(10);
        s.insert(NodeId::from_index(1));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(NodeId::from_index(1)));
    }

    #[test]
    fn contains_out_of_capacity_is_false() {
        let s = NodeSet::new(10);
        assert!(!s.contains(NodeId::from_index(1000)));
    }
}
