use std::fmt;

use crate::netlist::NodeId;

/// Errors produced while constructing, validating or parsing circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate was given a number of fanins its kind does not allow.
    Arity {
        /// The offending gate kind (display name).
        kind: &'static str,
        /// Number of fanins supplied.
        got: usize,
        /// Human-readable description of what is allowed.
        expected: &'static str,
    },
    /// A fanin referenced a node id that does not exist (yet).
    DanglingFanin {
        /// The node with the bad fanin list.
        node: NodeId,
        /// The missing fanin id.
        fanin: NodeId,
    },
    /// The netlist contains a combinational cycle through the given node.
    Cycle {
        /// A node on the cycle.
        node: NodeId,
    },
    /// Two nodes were given the same name.
    DuplicateName {
        /// The clashing name.
        name: String,
    },
    /// A circuit has no primary inputs or no primary outputs.
    EmptyInterface {
        /// `"inputs"` or `"outputs"`.
        what: &'static str,
    },
    /// A truth-table component was declared with an unsupported input count.
    LutWidth {
        /// Number of LUT inputs requested.
        inputs: usize,
    },
    /// A referenced LUT id does not exist in the circuit's table store.
    UnknownLut {
        /// The missing id.
        id: usize,
    },
    /// Text could not be parsed.
    Parse {
        /// 1-based line number in the source text.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A signal name was referenced but never defined.
    Undefined {
        /// The undefined signal name.
        name: String,
    },
    /// A test-point insertion request was invalid.
    TestPoint {
        /// What was wrong with the request.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Arity {
                kind,
                got,
                expected,
            } => write!(f, "gate `{kind}` given {got} fanins, expected {expected}"),
            NetlistError::DanglingFanin { node, fanin } => {
                write!(f, "node {node} references nonexistent fanin {fanin}")
            }
            NetlistError::Cycle { node } => {
                write!(f, "combinational cycle detected through node {node}")
            }
            NetlistError::DuplicateName { name } => {
                write!(f, "duplicate signal name `{name}`")
            }
            NetlistError::EmptyInterface { what } => {
                write!(f, "circuit has no primary {what}")
            }
            NetlistError::LutWidth { inputs } => {
                write!(
                    f,
                    "truth-table component with {inputs} inputs (supported: 1..=16)"
                )
            }
            NetlistError::UnknownLut { id } => write!(f, "unknown truth table id {id}"),
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::Undefined { name } => {
                write!(f, "signal `{name}` referenced but never defined")
            }
            NetlistError::TestPoint { message } => {
                write!(f, "invalid test point: {message}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}
