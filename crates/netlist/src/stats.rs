use std::fmt;

use crate::gate::GateKind;
use crate::levelize::Levels;
use crate::netlist::Circuit;
use crate::transistor::{gate_equivalents, transistor_count};

/// Per-kind gate counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateCounts {
    /// `Buf` gates.
    pub buf: usize,
    /// `Not` gates.
    pub not: usize,
    /// `And` gates.
    pub and: usize,
    /// `Nand` gates.
    pub nand: usize,
    /// `Or` gates.
    pub or: usize,
    /// `Nor` gates.
    pub nor: usize,
    /// `Xor` gates.
    pub xor: usize,
    /// `Xnor` gates.
    pub xnor: usize,
    /// Truth-table components.
    pub lut: usize,
    /// Constant nodes.
    pub constant: usize,
}

/// Summary statistics of a circuit: size, depth and cost-model numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Logic gate count (excludes inputs and constants).
    pub gates: usize,
    /// Per-kind breakdown.
    pub counts: GateCounts,
    /// Logic depth (levels).
    pub depth: u32,
    /// CMOS transistor estimate.
    pub transistors: u64,
    /// Gate equivalents (transistors / 4, rounded up).
    pub gate_equivalents: u64,
}

impl CircuitStats {
    /// Computes statistics for a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let mut counts = GateCounts::default();
        for (_, node) in circuit.iter() {
            match node.kind() {
                GateKind::Input => {}
                GateKind::Const(_) => counts.constant += 1,
                GateKind::Buf => counts.buf += 1,
                GateKind::Not => counts.not += 1,
                GateKind::And => counts.and += 1,
                GateKind::Nand => counts.nand += 1,
                GateKind::Or => counts.or += 1,
                GateKind::Nor => counts.nor += 1,
                GateKind::Xor => counts.xor += 1,
                GateKind::Xnor => counts.xnor += 1,
                GateKind::Lut(_) => counts.lut += 1,
            }
        }
        let levels = Levels::new(circuit);
        CircuitStats {
            name: circuit.name().to_string(),
            inputs: circuit.num_inputs(),
            outputs: circuit.num_outputs(),
            gates: circuit.num_gates(),
            counts,
            depth: levels.depth(),
            transistors: transistor_count(circuit),
            gate_equivalents: gate_equivalents(circuit),
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} inputs, {} outputs, {} gates, depth {}",
            self.name, self.inputs, self.outputs, self.gates, self.depth
        )?;
        write!(
            f,
            "  {} transistors (~{} gate equivalents)",
            self.transistors, self.gate_equivalents
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn stats_of_small_circuit() {
        let mut b = CircuitBuilder::new("s");
        let a = b.input("a");
        let c = b.input("c");
        let x = b.and2(a, c);
        let y = b.not(x);
        b.output(y, "z");
        let ckt = b.finish().unwrap();
        let st = CircuitStats::of(&ckt);
        assert_eq!(st.inputs, 2);
        assert_eq!(st.gates, 2);
        assert_eq!(st.counts.and, 1);
        assert_eq!(st.counts.not, 1);
        assert_eq!(st.depth, 2);
        assert!(st.transistors > 0);
        let shown = st.to_string();
        assert!(shown.contains("2 gates"));
    }
}
