use crate::error::NetlistError;
use crate::gate::{GateKind, LutId, TruthTable};
use crate::netlist::{Circuit, CircuitParts, NodeId};

/// Incremental, validated construction of a [`Circuit`].
///
/// Nodes must be created before they are referenced, so a builder-produced
/// circuit is stored in topological order (parsers may produce other orders;
/// [`crate::Levels`] never assumes storage order).
///
/// # Example
///
/// ```
/// use protest_netlist::CircuitBuilder;
///
/// # fn main() -> Result<(), protest_netlist::NetlistError> {
/// let mut b = CircuitBuilder::new("mux");
/// let s = b.input("s");
/// let a = b.input("a");
/// let c = b.input("c");
/// let ns = b.not(s);
/// let t0 = b.and2(ns, a);
/// let t1 = b.and2(s, c);
/// let y = b.or2(t0, t1);
/// b.output(y, "y");
/// let ckt = b.finish()?;
/// assert_eq!(ckt.num_gates(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CircuitBuilder {
    parts: CircuitParts,
}

impl CircuitBuilder {
    /// Starts a new empty circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            parts: CircuitParts::new(name),
        }
    }

    fn push(&mut self, kind: GateKind, fanins: &[NodeId], name: Option<String>) -> NodeId {
        self.parts.push_node(kind, fanins, name)
    }

    /// Adds a named primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(GateKind::Input, &[], Some(name.into()));
        self.parts.inputs.push(id);
        id
    }

    /// Adds `n` primary inputs named `prefix0 .. prefix{n-1}`.
    pub fn input_bus(&mut self, prefix: &str, n: usize) -> Vec<NodeId> {
        (0..n).map(|i| self.input(format!("{prefix}{i}"))).collect()
    }

    /// Adds a constant node.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.push(GateKind::Const(value), &[], None)
    }

    /// Adds an arbitrary gate. Prefer the typed helpers where possible.
    pub fn gate(&mut self, kind: GateKind, fanins: &[NodeId]) -> NodeId {
        self.push(kind, fanins, None)
    }

    /// Adds a gate and names its output signal.
    pub fn named_gate(
        &mut self,
        kind: GateKind,
        fanins: &[NodeId],
        name: impl Into<String>,
    ) -> NodeId {
        self.push(kind, fanins, Some(name.into()))
    }

    /// Interns a truth table, returning its id for use with [`Self::lut`].
    pub fn add_table(&mut self, table: TruthTable) -> LutId {
        // Reuse identical tables.
        if let Some(i) = self.parts.luts.iter().position(|t| *t == table) {
            return LutId(i as u32);
        }
        let id = LutId(self.parts.luts.len() as u32);
        self.parts.luts.push(table);
        id
    }

    /// Adds an arbitrary-function component from an interned truth table.
    pub fn lut(&mut self, table: LutId, fanins: &[NodeId]) -> NodeId {
        self.push(GateKind::Lut(table), fanins, None)
    }

    /// Adds a NOT gate.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.push(GateKind::Not, &[a], None)
    }

    /// Adds a BUF gate.
    pub fn buf(&mut self, a: NodeId) -> NodeId {
        self.push(GateKind::Buf, &[a], None)
    }

    /// Adds a 2-input AND.
    pub fn and2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(GateKind::And, &[a, b], None)
    }

    /// Adds a 2-input OR.
    pub fn or2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(GateKind::Or, &[a, b], None)
    }

    /// Adds a 2-input XOR.
    pub fn xor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(GateKind::Xor, &[a, b], None)
    }

    /// Adds a 2-input NAND.
    pub fn nand2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(GateKind::Nand, &[a, b], None)
    }

    /// Adds a 2-input NOR.
    pub fn nor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(GateKind::Nor, &[a, b], None)
    }

    /// Adds a 2-input XNOR.
    pub fn xnor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(GateKind::Xnor, &[a, b], None)
    }

    /// The constant driven by `node`, if it is a constant node.
    pub fn constant_value(&self, node: NodeId) -> Option<bool> {
        match self.parts.kinds[node.index()] {
            GateKind::Const(v) => Some(v),
            _ => None,
        }
    }

    /// AND2 with constant folding: `x·0 = 0`, `x·1 = x`. Generators of
    /// regular arrays (adders, dividers) use the folding constructors so
    /// boundary cells with tied inputs shrink to what a hand-drawn netlist
    /// would contain, instead of emitting structurally constant gates whose
    /// faults are undetectable.
    pub fn and2_fold(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.constant_value(a), self.constant_value(b)) {
            (Some(false), _) => a,
            (_, Some(false)) => b,
            (Some(true), _) => b,
            (_, Some(true)) => a,
            _ => self.and2(a, b),
        }
    }

    /// OR2 with constant folding: `x + 1 = 1`, `x + 0 = x`.
    pub fn or2_fold(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.constant_value(a), self.constant_value(b)) {
            (Some(true), _) => a,
            (_, Some(true)) => b,
            (Some(false), _) => b,
            (_, Some(false)) => a,
            _ => self.or2(a, b),
        }
    }

    /// XOR2 with constant folding: `x ⊕ 0 = x`, `x ⊕ 1 = ¬x`.
    pub fn xor2_fold(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.constant_value(a), self.constant_value(b)) {
            (Some(false), _) => b,
            (_, Some(false)) => a,
            (Some(true), _) => self.not(b),
            (_, Some(true)) => self.not(a),
            _ => self.xor2(a, b),
        }
    }

    /// NOT with constant folding.
    pub fn not_fold(&mut self, a: NodeId) -> NodeId {
        match self.constant_value(a) {
            Some(v) => self.constant(!v),
            None => self.not(a),
        }
    }

    /// Adds an n-ary AND gate (single gate, not a tree).
    ///
    /// # Panics
    ///
    /// Panics if `fanins` is empty.
    pub fn and(&mut self, fanins: &[NodeId]) -> NodeId {
        assert!(!fanins.is_empty(), "and() requires at least one fanin");
        self.push(GateKind::And, fanins, None)
    }

    /// Adds an n-ary OR gate (single gate, not a tree).
    ///
    /// # Panics
    ///
    /// Panics if `fanins` is empty.
    pub fn or(&mut self, fanins: &[NodeId]) -> NodeId {
        assert!(!fanins.is_empty(), "or() requires at least one fanin");
        self.push(GateKind::Or, fanins, None)
    }

    /// Adds an n-ary NAND gate.
    ///
    /// # Panics
    ///
    /// Panics if `fanins` is empty.
    pub fn nand(&mut self, fanins: &[NodeId]) -> NodeId {
        assert!(!fanins.is_empty(), "nand() requires at least one fanin");
        self.push(GateKind::Nand, fanins, None)
    }

    /// Adds an n-ary NOR gate.
    ///
    /// # Panics
    ///
    /// Panics if `fanins` is empty.
    pub fn nor(&mut self, fanins: &[NodeId]) -> NodeId {
        assert!(!fanins.is_empty(), "nor() requires at least one fanin");
        self.push(GateKind::Nor, fanins, None)
    }

    /// Builds a balanced tree of 2-input ANDs.
    ///
    /// # Panics
    ///
    /// Panics if `fanins` is empty.
    pub fn and_tree(&mut self, fanins: &[NodeId]) -> NodeId {
        self.tree(GateKind::And, fanins)
    }

    /// Builds a balanced tree of 2-input ORs.
    ///
    /// # Panics
    ///
    /// Panics if `fanins` is empty.
    pub fn or_tree(&mut self, fanins: &[NodeId]) -> NodeId {
        self.tree(GateKind::Or, fanins)
    }

    /// Builds a balanced tree of 2-input XORs (parity).
    ///
    /// # Panics
    ///
    /// Panics if `fanins` is empty.
    pub fn xor_tree(&mut self, fanins: &[NodeId]) -> NodeId {
        self.tree(GateKind::Xor, fanins)
    }

    fn tree(&mut self, kind: GateKind, fanins: &[NodeId]) -> NodeId {
        assert!(!fanins.is_empty(), "tree() requires at least one fanin");
        let mut layer: Vec<NodeId> = fanins.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.push(kind, &[pair[0], pair[1]], None));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// Names an existing node's signal (overwrites any previous name).
    pub fn name(&mut self, node: NodeId, name: impl Into<String>) {
        self.parts.names[node.index()] = Some(name.into());
    }

    /// Renames the circuit under construction.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.parts.name = name.into();
    }

    /// Marks a node as a primary output, with an output name.
    pub fn output(&mut self, node: NodeId, name: impl Into<String>) {
        self.parts.outputs.push(node);
        self.parts.output_names.push(Some(name.into()));
    }

    /// Marks a node as a primary output without a dedicated output name.
    pub fn output_unnamed(&mut self, node: NodeId) {
        self.parts.outputs.push(node);
        self.parts.output_names.push(None);
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.parts.len()
    }

    /// Finishes the circuit, validating all structural invariants.
    ///
    /// # Errors
    ///
    /// Any error from [`Circuit::validate`]: bad arity, dangling references,
    /// cycles, duplicate names, or an empty input/output interface.
    pub fn finish(self) -> Result<Circuit, NetlistError> {
        let circuit = self.parts.assemble();
        circuit.validate()?;
        Ok(circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_validates() {
        let mut b = CircuitBuilder::new("c");
        let xs = b.input_bus("x", 4);
        let t = b.and_tree(&xs);
        b.output(t, "all");
        let ckt = b.finish().unwrap();
        assert_eq!(ckt.num_inputs(), 4);
        assert_eq!(ckt.num_gates(), 3); // balanced AND tree of 4 leaves
    }

    #[test]
    fn rejects_empty_outputs() {
        let mut b = CircuitBuilder::new("c");
        b.input("a");
        assert!(matches!(
            b.finish(),
            Err(NetlistError::EmptyInterface { what: "outputs" })
        ));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let x = b.not(a);
        b.name(x, "a");
        b.output(x, "z");
        assert!(matches!(
            b.finish(),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn interned_tables_dedup() {
        let mut b = CircuitBuilder::new("c");
        let t1 = b.add_table(TruthTable::from_fn(2, |m| m == 3).unwrap());
        let t2 = b.add_table(TruthTable::from_fn(2, |m| m == 3).unwrap());
        assert_eq!(t1, t2);
    }

    #[test]
    fn tree_of_one_is_identity() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let t = b.xor_tree(&[a]);
        assert_eq!(t, a);
        b.output(t, "z");
        assert!(b.finish().is_ok());
    }

    #[test]
    fn lut_arity_validated() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let t = b.add_table(TruthTable::from_fn(2, |m| m != 0).unwrap());
        let g = b.lut(t, &[a]); // wrong arity: table has 2 inputs
        b.output(g, "z");
        assert!(matches!(b.finish(), Err(NetlistError::Arity { .. })));
    }
}
