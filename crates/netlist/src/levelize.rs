use crate::netlist::{Circuit, NodeId};

/// Topological order and logic levels of a circuit.
///
/// Level 0 holds primary inputs and constants; every gate sits one level above
/// its deepest fanin. The topological `order` is stable with respect to node
/// ids within a level, so repeated levelizations of the same circuit are
/// identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levels {
    order: Vec<NodeId>,
    level: Vec<u32>,
    depth: u32,
}

impl Levels {
    /// Levelizes a circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains a cycle. Circuits produced by
    /// [`crate::CircuitBuilder`] or the parsers are always acyclic; only
    /// hand-assembled `Circuit` values that skipped
    /// [`Circuit::validate`](crate::Circuit::validate) can trip this.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.num_nodes();
        let mut level = vec![0u32; n];
        let mut indeg = vec![0u32; n];
        // Fanout adjacency as a CSR array via counting sort — one shared
        // allocation instead of n per-node vectors, so levelizing a
        // 100k-gate circuit costs O(n + edges) without allocator churn.
        let mut fanout_off = vec![0u32; n + 1];
        for (id, node) in circuit.iter() {
            indeg[id.index()] = node.fanins().len() as u32;
            for &f in node.fanins() {
                fanout_off[f.index() + 1] += 1;
            }
        }
        for i in 0..n {
            fanout_off[i + 1] += fanout_off[i];
        }
        let mut fanout_dat = vec![0u32; fanout_off[n] as usize];
        let mut cursor = fanout_off.clone();
        for (id, node) in circuit.iter() {
            for &f in node.fanins() {
                fanout_dat[cursor[f.index()] as usize] = id.0;
                cursor[f.index()] += 1;
            }
        }
        let fanout = |v: usize| &fanout_dat[fanout_off[v] as usize..fanout_off[v + 1] as usize];
        // Process level by level to get a deterministic order sorted by
        // (level, id).
        let mut current: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        current.sort_unstable();
        let mut order = Vec::with_capacity(n);
        let mut depth = 0u32;
        while !current.is_empty() {
            let mut next: Vec<u32> = Vec::new();
            for &v in &current {
                order.push(NodeId(v));
                depth = depth.max(level[v as usize]);
                let lv = level[v as usize];
                for &u in fanout(v as usize) {
                    level[u as usize] = level[u as usize].max(lv + 1);
                    indeg[u as usize] -= 1;
                    if indeg[u as usize] == 0 {
                        next.push(u);
                    }
                }
            }
            next.sort_unstable();
            current = next;
        }
        assert_eq!(order.len(), n, "circuit contains a cycle");
        // `order` is grouped by wavefront, which respects dependencies but is
        // not strictly grouped by level (a node's level can exceed its
        // wavefront). Re-sort by (level, id) — still topological because a
        // fanin's level is strictly smaller.
        order.sort_unstable_by_key(|id| (level[id.index()], id.0));
        Levels {
            order,
            level,
            depth,
        }
    }

    /// Nodes in a valid evaluation order (fanins always precede fanouts).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The logic level of a node (0 for inputs/constants).
    pub fn level(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }

    /// The maximum level in the circuit (its logic depth).
    pub fn depth(&self) -> u32 {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn levels_of_chain() {
        let mut b = CircuitBuilder::new("chain");
        let a = b.input("a");
        let n1 = b.not(a);
        let n2 = b.not(n1);
        let n3 = b.not(n2);
        b.output(n3, "z");
        let ckt = b.finish().unwrap();
        let lv = Levels::new(&ckt);
        assert_eq!(lv.level(a), 0);
        assert_eq!(lv.level(n1), 1);
        assert_eq!(lv.level(n3), 3);
        assert_eq!(lv.depth(), 3);
    }

    #[test]
    fn order_respects_dependencies() {
        let mut b = CircuitBuilder::new("c");
        let xs = b.input_bus("x", 5);
        let t = b.xor_tree(&xs);
        let u = b.and2(t, xs[0]);
        b.output(u, "z");
        let ckt = b.finish().unwrap();
        let lv = Levels::new(&ckt);
        let mut pos = vec![0usize; ckt.num_nodes()];
        for (i, id) in lv.order().iter().enumerate() {
            pos[id.index()] = i;
        }
        for (id, node) in ckt.iter() {
            for &f in node.fanins() {
                assert!(pos[f.index()] < pos[id.index()], "fanin after fanout");
            }
        }
    }

    #[test]
    fn unbalanced_levels() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let c = b.input("c");
        let deep = {
            let mut x = a;
            for _ in 0..4 {
                x = b.not(x);
            }
            x
        };
        let g = b.and2(deep, c);
        b.output(g, "z");
        let ckt = b.finish().unwrap();
        let lv = Levels::new(&ckt);
        assert_eq!(lv.level(g), 5);
        assert_eq!(lv.depth(), 5);
        // order sorted by level: the AND gate must come last.
        assert_eq!(*lv.order().last().unwrap(), g);
    }
}
