//! Netlist writers: `.bench` and PDL emission.

use std::fmt::Write as _;

use crate::gate::GateKind;
use crate::netlist::{Circuit, NodeId};

/// Serializes a circuit in ISCAS-85 `.bench` syntax.
///
/// Truth-table components have no `.bench` equivalent and are rendered as a
/// comment plus an `AND` placeholder would be misleading, so this function
/// panics on them; decompose LUTs before export.
///
/// # Panics
///
/// Panics if the circuit contains [`GateKind::Lut`] nodes.
pub fn to_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    let sig = |id: NodeId| signal_name(circuit, id);
    for &i in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", sig(i));
    }
    for &o in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", sig(o));
    }
    for (id, node) in circuit.iter() {
        let gate = match node.kind() {
            GateKind::Input => continue,
            GateKind::Const(false) => "CONST0",
            GateKind::Const(true) => "CONST1",
            GateKind::Buf => "BUFF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Lut(_) => panic!("cannot export truth-table components to .bench"),
        };
        let args: Vec<String> = node.fanins().iter().map(|&f| sig(f)).collect();
        let _ = writeln!(out, "{} = {}({})", sig(id), gate, args.join(", "));
    }
    out
}

/// Serializes a circuit in PDL syntax (see [`crate::parse_pdl`]).
///
/// # Panics
///
/// Panics if the circuit contains [`GateKind::Lut`] nodes.
pub fn to_pdl(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "circuit {};", circuit.name());
    let sig = |id: NodeId| signal_name(circuit, id);
    let inputs: Vec<String> = circuit.inputs().iter().map(|&i| sig(i)).collect();
    let _ = writeln!(out, "input {};", inputs.join(" "));
    let outputs: Vec<String> = circuit.outputs().iter().map(|&o| sig(o)).collect();
    let _ = writeln!(out, "output {};", outputs.join(" "));
    for (id, node) in circuit.iter() {
        match node.kind() {
            GateKind::Input => continue,
            GateKind::Const(v) => {
                let _ = writeln!(out, "{} = buf({});", sig(id), if v { 1 } else { 0 });
            }
            GateKind::Lut(_) => panic!("cannot export truth-table components to PDL"),
            kind => {
                let args: Vec<String> = node.fanins().iter().map(|&f| sig(f)).collect();
                let _ = writeln!(
                    out,
                    "{} = {}({});",
                    sig(id),
                    kind.mnemonic(),
                    args.join(", ")
                );
            }
        }
    }
    out
}

/// A writer-safe signal name: declared name if it is a clean identifier,
/// otherwise a synthetic `n<i>` label.
fn signal_name(circuit: &Circuit, id: NodeId) -> String {
    match circuit.node(id).name() {
        Some(n) if n.bytes().all(|c| c.is_ascii_alphanumeric() || c == b'_') => n.to_string(),
        _ => format!("n{}", id.index()),
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::CircuitBuilder;
    use crate::parse_bench::parse_bench;
    use crate::parse_pdl::parse_pdl;

    use super::*;

    fn sample() -> crate::Circuit {
        let mut b = CircuitBuilder::new("samp");
        let a = b.input("a");
        let c = b.input("c");
        let x = b.nand2(a, c);
        let y = b.xor2(x, a);
        b.name(x, "x");
        b.name(y, "y");
        b.output(y, "y");
        b.finish().unwrap()
    }

    #[test]
    fn bench_roundtrip() {
        let ckt = sample();
        let text = to_bench(&ckt);
        let back = parse_bench("samp", &text).unwrap();
        assert_eq!(back.num_inputs(), ckt.num_inputs());
        assert_eq!(back.num_gates(), ckt.num_gates());
        assert_eq!(back.num_outputs(), 1);
    }

    #[test]
    fn pdl_roundtrip() {
        let ckt = sample();
        let text = to_pdl(&ckt);
        let back = parse_pdl("samp", &text).unwrap();
        assert_eq!(back.name(), "samp");
        assert_eq!(back.num_inputs(), 2);
        assert_eq!(back.num_gates(), ckt.num_gates());
    }

    #[test]
    fn unnamed_nodes_get_synthetic_names() {
        let mut b = CircuitBuilder::new("anon");
        let a = b.input("a");
        let x = b.not(a); // unnamed gate
        b.output(x, "z");
        let ckt = b.finish().unwrap();
        let text = to_bench(&ckt);
        assert!(text.contains("n1 = NOT(a)"), "got:\n{text}");
        let back = parse_bench("anon", &text).unwrap();
        assert_eq!(back.num_gates(), 1);
    }
}
