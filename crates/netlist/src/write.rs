//! Netlist writers: `.bench` and PDL emission.
//!
//! Both writers are **round-trip stable**: `write → parse → write` yields
//! bit-identical text. Two properties make that hold on arbitrary circuits
//! (the test-point-insertion flow produces circuits exercising both):
//!
//! * Synthetic names never collide with declared ones — an unnamed node's
//!   `n<i>` label is suffixed with `_` until it is unique, so a circuit
//!   that declares a signal `n5` next to an unnamed node 5 still writes
//!   two distinct definitions.
//! * PDL assignments are emitted in dependency (levelized) order, because
//!   [`crate::parse_pdl`] resolves references strictly backwards — storage
//!   order may contain forward references (e.g. after test-point insertion
//!   appends a control gate whose consumers precede it).

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::gate::GateKind;
use crate::levelize::Levels;
use crate::netlist::{Circuit, NodeId};

/// Serializes a circuit in ISCAS-85 `.bench` syntax.
///
/// Truth-table components have no `.bench` equivalent and are rendered as a
/// comment plus an `AND` placeholder would be misleading, so this function
/// panics on them; decompose LUTs before export.
///
/// # Panics
///
/// Panics if the circuit contains [`GateKind::Lut`] nodes.
pub fn to_bench(circuit: &Circuit) -> String {
    let names = signal_names(circuit, is_clean_bench);
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    for &i in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", names[i.index()]);
    }
    for &o in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", names[o.index()]);
    }
    for (id, node) in circuit.iter() {
        let gate = match node.kind() {
            GateKind::Input => continue,
            GateKind::Const(false) => "CONST0",
            GateKind::Const(true) => "CONST1",
            GateKind::Buf => "BUFF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Lut(_) => panic!("cannot export truth-table components to .bench"),
        };
        let args: Vec<&str> = node
            .fanins()
            .iter()
            .map(|&f| names[f.index()].as_str())
            .collect();
        let _ = writeln!(out, "{} = {}({})", names[id.index()], gate, args.join(", "));
    }
    out
}

/// Serializes a circuit in PDL syntax (see [`crate::parse_pdl`]).
///
/// Assignments are emitted in levelized (dependency) order — PDL forbids
/// forward references — and constants as `const0()` / `const1()` gates, so
/// a parse of the output reproduces the circuit structure exactly.
///
/// # Panics
///
/// Panics if the circuit contains [`GateKind::Lut`] nodes.
pub fn to_pdl(circuit: &Circuit) -> String {
    let names = signal_names(circuit, is_clean_pdl);
    let mut out = String::new();
    let _ = writeln!(out, "circuit {};", circuit.name());
    let inputs: Vec<&str> = circuit
        .inputs()
        .iter()
        .map(|&i| names[i.index()].as_str())
        .collect();
    let _ = writeln!(out, "input {};", inputs.join(" "));
    let outputs: Vec<&str> = circuit
        .outputs()
        .iter()
        .map(|&o| names[o.index()].as_str())
        .collect();
    let _ = writeln!(out, "output {};", outputs.join(" "));
    let levels = Levels::new(circuit);
    for &id in levels.order() {
        let node = circuit.node(id);
        match node.kind() {
            GateKind::Input => continue,
            GateKind::Const(v) => {
                let gate = if v { "const1" } else { "const0" };
                let _ = writeln!(out, "{} = {}();", names[id.index()], gate);
            }
            GateKind::Lut(_) => panic!("cannot export truth-table components to PDL"),
            kind => {
                let args: Vec<&str> = node
                    .fanins()
                    .iter()
                    .map(|&f| names[f.index()].as_str())
                    .collect();
                let _ = writeln!(
                    out,
                    "{} = {}({});",
                    names[id.index()],
                    kind.mnemonic(),
                    args.join(", ")
                );
            }
        }
    }
    out
}

/// Serializes a circuit in combinational BLIF syntax (see
/// [`crate::parse_blif`]).
///
/// Unlike [`to_bench`], truth-table components export losslessly as
/// single-output covers, so this is the format of choice for circuits with
/// LUT nodes. Standard gates emit canonical covers (single all-`1`/all-`0`
/// cube for AND/NAND/OR/NOR, minterm rows for parity) and LUT tables that
/// happen to equal a standard gate are normalized to that gate's cover, so
/// `write → parse → write` is a text fixpoint.
///
/// # Panics
///
/// Panics on parity gates or truth-table components wider than
/// [`crate::TruthTable::MAX_INPUTS`] — their covers need minterm
/// enumeration, which is infeasible at that width.
pub fn to_blif(circuit: &Circuit) -> String {
    let names = signal_names(circuit, is_clean_bench);
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", blif_model_name(circuit.name()));
    let inputs: Vec<&str> = circuit
        .inputs()
        .iter()
        .map(|&i| names[i.index()].as_str())
        .collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let outputs: Vec<&str> = circuit
        .outputs()
        .iter()
        .map(|&o| names[o.index()].as_str())
        .collect();
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));
    for (id, node) in circuit.iter() {
        match node.kind() {
            GateKind::Input => continue,
            GateKind::Const(v) => {
                let _ = writeln!(out, ".names {}", names[id.index()]);
                if v {
                    out.push_str("1\n");
                }
            }
            kind => {
                let args: Vec<&str> = node
                    .fanins()
                    .iter()
                    .map(|&f| names[f.index()].as_str())
                    .collect();
                let _ = writeln!(out, ".names {} {}", args.join(" "), names[id.index()]);
                write_blif_cover(&mut out, circuit, kind, node.fanins().len());
            }
        }
    }
    out.push_str(".end\n");
    out
}

/// Emits the canonical cover rows for one gate.
///
/// The encodings mirror what [`crate::parse_blif`] classifies back to the
/// same [`GateKind`], keeping serialization a fixpoint. LUTs equal to a
/// standard gate reuse that gate's cover; general LUTs list their ON-set
/// minterms.
fn write_blif_cover(out: &mut String, circuit: &Circuit, kind: GateKind, n: usize) {
    let minterm_rows = |out: &mut String, pred: &dyn Fn(usize) -> bool| {
        assert!(
            n <= crate::gate::TruthTable::MAX_INPUTS,
            "cannot enumerate a {n}-input cover (max {})",
            crate::gate::TruthTable::MAX_INPUTS
        );
        for m in 0..1usize << n {
            if pred(m) {
                for i in 0..n {
                    out.push(if (m >> i) & 1 == 1 { '1' } else { '0' });
                }
                out.push_str(" 1\n");
            }
        }
    };
    match kind {
        GateKind::Buf => out.push_str("1 1\n"),
        GateKind::Not => out.push_str("0 1\n"),
        GateKind::And => {
            for _ in 0..n {
                out.push('1');
            }
            out.push_str(" 1\n");
        }
        GateKind::Nand => {
            for _ in 0..n {
                out.push('1');
            }
            out.push_str(" 0\n");
        }
        GateKind::Or => {
            for _ in 0..n {
                out.push('0');
            }
            out.push_str(" 0\n");
        }
        GateKind::Nor => {
            for _ in 0..n {
                out.push('0');
            }
            out.push_str(" 1\n");
        }
        GateKind::Xor => minterm_rows(out, &|m| m.count_ones() & 1 == 1),
        GateKind::Xnor => minterm_rows(out, &|m| m.count_ones() & 1 == 0),
        GateKind::Lut(lid) => {
            let table = circuit.lut(lid);
            match table.as_standard_gate() {
                Some(k) => write_blif_cover(out, circuit, k, n),
                None => minterm_rows(out, &|m| table.bit(m)),
            }
        }
        GateKind::Input | GateKind::Const(_) => unreachable!("handled by caller"),
    }
}

/// BLIF model names are whitespace-delimited tokens; replace anything else
/// so `.model` round-trips (idempotent: a sanitized name sanitizes to
/// itself).
fn blif_model_name(name: &str) -> String {
    if name.is_empty() {
        return "circuit".to_string();
    }
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writer-safe signal names for every node: the declared name when the
/// target syntax can represent it, otherwise a synthetic `n<i>` label
/// suffixed with `_` until it collides with no declared (or earlier
/// synthetic) name.
fn signal_names(circuit: &Circuit, clean: fn(&str) -> bool) -> Vec<String> {
    let mut taken: HashSet<String> = circuit
        .nodes()
        .filter_map(|n| n.name().filter(|s| clean(s)).map(str::to_string))
        .collect();
    (0..circuit.num_nodes())
        .map(|i| {
            let node = circuit.node(NodeId::from_index(i));
            match node.name().filter(|s| clean(s)) {
                Some(n) => n.to_string(),
                None => {
                    let mut synth = format!("n{i}");
                    while taken.contains(&synth) {
                        synth.push('_');
                    }
                    taken.insert(synth.clone());
                    synth
                }
            }
        })
        .collect()
}

/// Whether a declared name can be written verbatim in `.bench` (the
/// parser accepts any alphanumeric token — ISCAS names are often purely
/// numeric).
fn is_clean_bench(name: &str) -> bool {
    !name.is_empty() && name.bytes().all(|c| c.is_ascii_alphanumeric() || c == b'_')
}

/// Whether a declared name is a PDL identifier: [`is_clean_bench`] minus
/// leading digits — `parse_pdl` rejects digit-leading assignment targets
/// and reads a bare `0`/`1` fanin as a constant, so those names must fall
/// back to synthetic labels.
fn is_clean_pdl(name: &str) -> bool {
    is_clean_bench(name) && !name.as_bytes()[0].is_ascii_digit()
}

#[cfg(test)]
mod tests {
    use crate::builder::CircuitBuilder;
    use crate::parse_bench::parse_bench;
    use crate::parse_blif::parse_blif;
    use crate::parse_pdl::parse_pdl;

    use super::*;

    fn sample() -> crate::Circuit {
        let mut b = CircuitBuilder::new("samp");
        let a = b.input("a");
        let c = b.input("c");
        let x = b.nand2(a, c);
        let y = b.xor2(x, a);
        b.name(x, "x");
        b.name(y, "y");
        b.output(y, "y");
        b.finish().unwrap()
    }

    #[test]
    fn bench_roundtrip() {
        let ckt = sample();
        let text = to_bench(&ckt);
        let back = parse_bench("samp", &text).unwrap();
        assert_eq!(back.num_inputs(), ckt.num_inputs());
        assert_eq!(back.num_gates(), ckt.num_gates());
        assert_eq!(back.num_outputs(), 1);
        // Text fixpoint: re-serializing the parsed circuit is bit-identical.
        assert_eq!(to_bench(&back), text);
    }

    #[test]
    fn pdl_roundtrip() {
        let ckt = sample();
        let text = to_pdl(&ckt);
        let back = parse_pdl("samp", &text).unwrap();
        assert_eq!(back.name(), "samp");
        assert_eq!(back.num_inputs(), 2);
        assert_eq!(back.num_gates(), ckt.num_gates());
        assert_eq!(to_pdl(&back), text);
    }

    #[test]
    fn unnamed_nodes_get_synthetic_names() {
        let mut b = CircuitBuilder::new("anon");
        let a = b.input("a");
        let x = b.not(a); // unnamed gate
        b.output(x, "z");
        let ckt = b.finish().unwrap();
        let text = to_bench(&ckt);
        assert!(text.contains("n1 = NOT(a)"), "got:\n{text}");
        let back = parse_bench("anon", &text).unwrap();
        assert_eq!(back.num_gates(), 1);
    }

    #[test]
    fn synthetic_names_dodge_declared_collisions() {
        // A signal *declared* `n1` next to an unnamed node at index 1 used
        // to serialize as two `n1 = …` definitions (a parse error). The
        // writer now suffixes the synthetic label.
        let mut b = CircuitBuilder::new("clash");
        let a = b.input("a");
        let x = b.not(a); // index 1, unnamed → synthetic n1
        let y = b.buf(x);
        b.name(y, "n1"); // declared name colliding with the synthetic
        b.output(y, "z");
        let ckt = b.finish().unwrap();
        let text = to_bench(&ckt);
        assert!(text.contains("n1_ = NOT(a)"), "got:\n{text}");
        assert!(text.contains("n1 = BUFF(n1_)"), "got:\n{text}");
        let back = parse_bench("clash", &text).unwrap();
        assert_eq!(to_bench(&back), text);
        let pdl = to_pdl(&ckt);
        let back = parse_pdl("clash", &pdl).unwrap();
        assert_eq!(to_pdl(&back), pdl);
    }

    #[test]
    fn pdl_rejects_digit_leading_names_via_synthetic_fallback() {
        // ISCAS-style numeric signal names are legal in `.bench` but not
        // in PDL (`10` fails is_ident, a bare `1` fanin parses as a
        // constant) — the PDL writer must fall back to synthetic labels.
        let text = "\
INPUT(1)
INPUT(2)
OUTPUT(10)
10 = NAND(1, 2)
";
        let ckt = parse_bench("numeric", text).unwrap();
        // `.bench` keeps the numeric names verbatim, bit-stably.
        assert_eq!(
            to_bench(&parse_bench("numeric", &to_bench(&ckt)).unwrap()),
            to_bench(&ckt)
        );
        let pdl = to_pdl(&ckt);
        assert!(!pdl.contains("10 ="), "got:\n{pdl}");
        let back = parse_pdl("numeric", &pdl).unwrap();
        assert_eq!(back.num_inputs(), 2);
        assert_eq!(back.num_gates(), 1);
        assert_eq!(to_pdl(&back), pdl);
    }

    #[test]
    fn pdl_emits_in_dependency_order() {
        // Storage order with a forward reference (consumer before driver):
        // the PDL writer must reorder, because the parser resolves
        // backwards only. `.bench` handles forward references natively.
        let text = "\
INPUT(a)
OUTPUT(z)
z = NOT(y)
y = BUF(a)
";
        let ckt = parse_bench("fwd", text).unwrap();
        let pdl = to_pdl(&ckt);
        let back = parse_pdl("fwd", &pdl).unwrap();
        assert_eq!(back.num_gates(), ckt.num_gates());
        assert_eq!(to_pdl(&back), pdl);
    }

    #[test]
    fn blif_roundtrip() {
        let ckt = sample();
        let text = to_blif(&ckt);
        let back = parse_blif("samp", &text).unwrap();
        assert_eq!(back.name(), "samp");
        assert_eq!(back.num_inputs(), ckt.num_inputs());
        assert_eq!(back.num_gates(), ckt.num_gates());
        assert_eq!(back.num_outputs(), 1);
        assert_eq!(to_blif(&back), text);
    }

    #[test]
    fn blif_luts_roundtrip_losslessly() {
        // `.bench` panics on LUTs; BLIF is the lossless path.
        let mut b = CircuitBuilder::new("lutty");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let maj =
            b.add_table(crate::gate::TruthTable::from_fn(3, |m| m.count_ones() >= 2).unwrap());
        let g = b.lut(maj, &[a, c, d]);
        b.name(g, "maj");
        b.output(g, "maj");
        let ckt = b.finish().unwrap();
        let text = to_blif(&ckt);
        let back = parse_blif("lutty", &text).unwrap();
        assert_eq!(back.num_gates(), 1);
        let g = back.find("maj").unwrap();
        let GateKind::Lut(lid) = back.node(g).kind() else {
            panic!("majority must survive as a truth table");
        };
        assert_eq!(back.lut(lid), ckt.lut(maj));
        assert_eq!(to_blif(&back), text);
    }

    #[test]
    fn blif_normalizes_gate_shaped_luts() {
        // A LUT that happens to compute AND2 serializes as the canonical
        // AND cover and re-parses as a plain gate — text stays a fixpoint.
        let mut b = CircuitBuilder::new("norm");
        let a = b.input("a");
        let c = b.input("b");
        let t = b.add_table(crate::gate::TruthTable::from_fn(2, |m| m == 3).unwrap());
        let g = b.lut(t, &[a, c]);
        b.output(g, "z");
        let ckt = b.finish().unwrap();
        let text = to_blif(&ckt);
        let back = parse_blif("norm", &text).unwrap();
        let z = back.outputs()[0];
        assert_eq!(back.node(z).kind(), GateKind::And);
        assert_eq!(to_blif(&back), text);
    }

    #[test]
    fn blif_synthetic_names_dodge_declared_collisions() {
        // Mirror of `synthetic_names_dodge_declared_collisions` for BLIF:
        // a declared `n1` next to an unnamed node 1 must not produce two
        // `.names … n1` definitions.
        let mut b = CircuitBuilder::new("clash");
        let a = b.input("a");
        let x = b.not(a); // index 1, unnamed → synthetic n1
        let y = b.buf(x);
        b.name(y, "n1"); // declared name colliding with the synthetic
        b.output(y, "z");
        let ckt = b.finish().unwrap();
        let text = to_blif(&ckt);
        assert!(text.contains(".names a n1_\n0 1"), "got:\n{text}");
        assert!(text.contains(".names n1_ n1\n1 1"), "got:\n{text}");
        let back = parse_blif("clash", &text).unwrap();
        assert_eq!(to_blif(&back), text);
    }

    #[test]
    fn blif_constants_and_model_sanitization() {
        let mut b = CircuitBuilder::new("with space");
        let a = b.input("a");
        let one = b.constant(true);
        let zero = b.constant(false);
        let g = b.xor2(a, one);
        let h = b.or2(g, zero);
        b.output(h, "z");
        let ckt = b.finish().unwrap();
        let text = to_blif(&ckt);
        assert!(text.starts_with(".model with_space\n"), "got:\n{text}");
        let back = parse_blif("x", &text).unwrap();
        assert_eq!(back.num_nodes(), ckt.num_nodes());
        assert_eq!(to_blif(&back), text);
    }

    #[test]
    fn pdl_constants_roundtrip_without_growth() {
        let mut b = CircuitBuilder::new("k");
        let a = b.input("a");
        let one = b.constant(true);
        let z = b.xor2(a, one);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let pdl = to_pdl(&ckt);
        assert!(pdl.contains("= const1();"), "got:\n{pdl}");
        let back = parse_pdl("k", &pdl).unwrap();
        assert_eq!(back.num_nodes(), ckt.num_nodes());
        assert_eq!(to_pdl(&back), pdl);
    }
}
