//! Netlist writers: `.bench` and PDL emission.
//!
//! Both writers are **round-trip stable**: `write → parse → write` yields
//! bit-identical text. Two properties make that hold on arbitrary circuits
//! (the test-point-insertion flow produces circuits exercising both):
//!
//! * Synthetic names never collide with declared ones — an unnamed node's
//!   `n<i>` label is suffixed with `_` until it is unique, so a circuit
//!   that declares a signal `n5` next to an unnamed node 5 still writes
//!   two distinct definitions.
//! * PDL assignments are emitted in dependency (levelized) order, because
//!   [`crate::parse_pdl`] resolves references strictly backwards — storage
//!   order may contain forward references (e.g. after test-point insertion
//!   appends a control gate whose consumers precede it).

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::gate::GateKind;
use crate::levelize::Levels;
use crate::netlist::{Circuit, NodeId};

/// Serializes a circuit in ISCAS-85 `.bench` syntax.
///
/// Truth-table components have no `.bench` equivalent and are rendered as a
/// comment plus an `AND` placeholder would be misleading, so this function
/// panics on them; decompose LUTs before export.
///
/// # Panics
///
/// Panics if the circuit contains [`GateKind::Lut`] nodes.
pub fn to_bench(circuit: &Circuit) -> String {
    let names = signal_names(circuit, is_clean_bench);
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    for &i in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", names[i.index()]);
    }
    for &o in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", names[o.index()]);
    }
    for (id, node) in circuit.iter() {
        let gate = match node.kind() {
            GateKind::Input => continue,
            GateKind::Const(false) => "CONST0",
            GateKind::Const(true) => "CONST1",
            GateKind::Buf => "BUFF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Lut(_) => panic!("cannot export truth-table components to .bench"),
        };
        let args: Vec<&str> = node
            .fanins()
            .iter()
            .map(|&f| names[f.index()].as_str())
            .collect();
        let _ = writeln!(out, "{} = {}({})", names[id.index()], gate, args.join(", "));
    }
    out
}

/// Serializes a circuit in PDL syntax (see [`crate::parse_pdl`]).
///
/// Assignments are emitted in levelized (dependency) order — PDL forbids
/// forward references — and constants as `const0()` / `const1()` gates, so
/// a parse of the output reproduces the circuit structure exactly.
///
/// # Panics
///
/// Panics if the circuit contains [`GateKind::Lut`] nodes.
pub fn to_pdl(circuit: &Circuit) -> String {
    let names = signal_names(circuit, is_clean_pdl);
    let mut out = String::new();
    let _ = writeln!(out, "circuit {};", circuit.name());
    let inputs: Vec<&str> = circuit
        .inputs()
        .iter()
        .map(|&i| names[i.index()].as_str())
        .collect();
    let _ = writeln!(out, "input {};", inputs.join(" "));
    let outputs: Vec<&str> = circuit
        .outputs()
        .iter()
        .map(|&o| names[o.index()].as_str())
        .collect();
    let _ = writeln!(out, "output {};", outputs.join(" "));
    let levels = Levels::new(circuit);
    for &id in levels.order() {
        let node = circuit.node(id);
        match node.kind() {
            GateKind::Input => continue,
            GateKind::Const(v) => {
                let gate = if v { "const1" } else { "const0" };
                let _ = writeln!(out, "{} = {}();", names[id.index()], gate);
            }
            GateKind::Lut(_) => panic!("cannot export truth-table components to PDL"),
            kind => {
                let args: Vec<&str> = node
                    .fanins()
                    .iter()
                    .map(|&f| names[f.index()].as_str())
                    .collect();
                let _ = writeln!(
                    out,
                    "{} = {}({});",
                    names[id.index()],
                    kind.mnemonic(),
                    args.join(", ")
                );
            }
        }
    }
    out
}

/// Writer-safe signal names for every node: the declared name when the
/// target syntax can represent it, otherwise a synthetic `n<i>` label
/// suffixed with `_` until it collides with no declared (or earlier
/// synthetic) name.
fn signal_names(circuit: &Circuit, clean: fn(&str) -> bool) -> Vec<String> {
    let mut taken: HashSet<String> = circuit
        .nodes()
        .iter()
        .filter_map(|n| n.name().filter(|s| clean(s)).map(str::to_string))
        .collect();
    (0..circuit.num_nodes())
        .map(|i| {
            let node = circuit.node(NodeId::from_index(i));
            match node.name().filter(|s| clean(s)) {
                Some(n) => n.to_string(),
                None => {
                    let mut synth = format!("n{i}");
                    while taken.contains(&synth) {
                        synth.push('_');
                    }
                    taken.insert(synth.clone());
                    synth
                }
            }
        })
        .collect()
}

/// Whether a declared name can be written verbatim in `.bench` (the
/// parser accepts any alphanumeric token — ISCAS names are often purely
/// numeric).
fn is_clean_bench(name: &str) -> bool {
    !name.is_empty() && name.bytes().all(|c| c.is_ascii_alphanumeric() || c == b'_')
}

/// Whether a declared name is a PDL identifier: [`is_clean_bench`] minus
/// leading digits — `parse_pdl` rejects digit-leading assignment targets
/// and reads a bare `0`/`1` fanin as a constant, so those names must fall
/// back to synthetic labels.
fn is_clean_pdl(name: &str) -> bool {
    is_clean_bench(name) && !name.as_bytes()[0].is_ascii_digit()
}

#[cfg(test)]
mod tests {
    use crate::builder::CircuitBuilder;
    use crate::parse_bench::parse_bench;
    use crate::parse_pdl::parse_pdl;

    use super::*;

    fn sample() -> crate::Circuit {
        let mut b = CircuitBuilder::new("samp");
        let a = b.input("a");
        let c = b.input("c");
        let x = b.nand2(a, c);
        let y = b.xor2(x, a);
        b.name(x, "x");
        b.name(y, "y");
        b.output(y, "y");
        b.finish().unwrap()
    }

    #[test]
    fn bench_roundtrip() {
        let ckt = sample();
        let text = to_bench(&ckt);
        let back = parse_bench("samp", &text).unwrap();
        assert_eq!(back.num_inputs(), ckt.num_inputs());
        assert_eq!(back.num_gates(), ckt.num_gates());
        assert_eq!(back.num_outputs(), 1);
        // Text fixpoint: re-serializing the parsed circuit is bit-identical.
        assert_eq!(to_bench(&back), text);
    }

    #[test]
    fn pdl_roundtrip() {
        let ckt = sample();
        let text = to_pdl(&ckt);
        let back = parse_pdl("samp", &text).unwrap();
        assert_eq!(back.name(), "samp");
        assert_eq!(back.num_inputs(), 2);
        assert_eq!(back.num_gates(), ckt.num_gates());
        assert_eq!(to_pdl(&back), text);
    }

    #[test]
    fn unnamed_nodes_get_synthetic_names() {
        let mut b = CircuitBuilder::new("anon");
        let a = b.input("a");
        let x = b.not(a); // unnamed gate
        b.output(x, "z");
        let ckt = b.finish().unwrap();
        let text = to_bench(&ckt);
        assert!(text.contains("n1 = NOT(a)"), "got:\n{text}");
        let back = parse_bench("anon", &text).unwrap();
        assert_eq!(back.num_gates(), 1);
    }

    #[test]
    fn synthetic_names_dodge_declared_collisions() {
        // A signal *declared* `n1` next to an unnamed node at index 1 used
        // to serialize as two `n1 = …` definitions (a parse error). The
        // writer now suffixes the synthetic label.
        let mut b = CircuitBuilder::new("clash");
        let a = b.input("a");
        let x = b.not(a); // index 1, unnamed → synthetic n1
        let y = b.buf(x);
        b.name(y, "n1"); // declared name colliding with the synthetic
        b.output(y, "z");
        let ckt = b.finish().unwrap();
        let text = to_bench(&ckt);
        assert!(text.contains("n1_ = NOT(a)"), "got:\n{text}");
        assert!(text.contains("n1 = BUFF(n1_)"), "got:\n{text}");
        let back = parse_bench("clash", &text).unwrap();
        assert_eq!(to_bench(&back), text);
        let pdl = to_pdl(&ckt);
        let back = parse_pdl("clash", &pdl).unwrap();
        assert_eq!(to_pdl(&back), pdl);
    }

    #[test]
    fn pdl_rejects_digit_leading_names_via_synthetic_fallback() {
        // ISCAS-style numeric signal names are legal in `.bench` but not
        // in PDL (`10` fails is_ident, a bare `1` fanin parses as a
        // constant) — the PDL writer must fall back to synthetic labels.
        let text = "\
INPUT(1)
INPUT(2)
OUTPUT(10)
10 = NAND(1, 2)
";
        let ckt = parse_bench("numeric", text).unwrap();
        // `.bench` keeps the numeric names verbatim, bit-stably.
        assert_eq!(
            to_bench(&parse_bench("numeric", &to_bench(&ckt)).unwrap()),
            to_bench(&ckt)
        );
        let pdl = to_pdl(&ckt);
        assert!(!pdl.contains("10 ="), "got:\n{pdl}");
        let back = parse_pdl("numeric", &pdl).unwrap();
        assert_eq!(back.num_inputs(), 2);
        assert_eq!(back.num_gates(), 1);
        assert_eq!(to_pdl(&back), pdl);
    }

    #[test]
    fn pdl_emits_in_dependency_order() {
        // Storage order with a forward reference (consumer before driver):
        // the PDL writer must reorder, because the parser resolves
        // backwards only. `.bench` handles forward references natively.
        let text = "\
INPUT(a)
OUTPUT(z)
z = NOT(y)
y = BUF(a)
";
        let ckt = parse_bench("fwd", text).unwrap();
        let pdl = to_pdl(&ckt);
        let back = parse_pdl("fwd", &pdl).unwrap();
        assert_eq!(back.num_gates(), ckt.num_gates());
        assert_eq!(to_pdl(&back), pdl);
    }

    #[test]
    fn pdl_constants_roundtrip_without_growth() {
        let mut b = CircuitBuilder::new("k");
        let a = b.input("a");
        let one = b.constant(true);
        let z = b.xor2(a, one);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let pdl = to_pdl(&ckt);
        assert!(pdl.contains("= const1();"), "got:\n{pdl}");
        let back = parse_pdl("k", &pdl).unwrap();
        assert_eq!(back.num_nodes(), ckt.num_nodes());
        assert_eq!(to_pdl(&back), pdl);
    }
}
