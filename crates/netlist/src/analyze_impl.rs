use crate::netlist::{Circuit, NodeId};
use crate::nodeset::NodeSet;

/// Compressed fanout map of a circuit: for each node, the list of
/// `(successor, pin)` pairs that consume it.
#[derive(Debug, Clone)]
pub struct Fanouts {
    offsets: Vec<u32>,
    targets: Vec<(NodeId, u8)>,
}

impl Fanouts {
    /// Builds the fanout map.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.num_nodes();
        let mut counts = vec![0u32; n + 1];
        for (_, node) in circuit.iter() {
            for &f in node.fanins() {
                counts[f.index() + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![(NodeId::from_index(0), 0u8); offsets[n] as usize];
        for (id, node) in circuit.iter() {
            for (pin, &f) in node.fanins().iter().enumerate() {
                let slot = cursor[f.index()] as usize;
                targets[slot] = (id, pin as u8);
                cursor[f.index()] += 1;
            }
        }
        Fanouts { offsets, targets }
    }

    /// The `(successor, pin)` pairs reading node `id`.
    pub fn of(&self, id: NodeId) -> &[(NodeId, u8)] {
        let lo = self.offsets[id.index()] as usize;
        let hi = self.offsets[id.index() + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Number of distinct gate pins reading node `id`.
    pub fn degree(&self, id: NodeId) -> usize {
        self.of(id).len()
    }

    /// Whether the node drives two or more pins (a fanout stem).
    pub fn is_stem(&self, id: NodeId) -> bool {
        self.degree(id) >= 2
    }
}

/// The transitive fanin cone of `root`, bounded by `max_depth` edges,
/// including `root` itself.
pub fn fanin_cone(circuit: &Circuit, root: NodeId, max_depth: usize) -> NodeSet {
    let mut set = NodeSet::new(circuit.num_nodes());
    let mut frontier = vec![root];
    set.insert(root);
    for _ in 0..max_depth {
        let mut next = Vec::new();
        for id in frontier.drain(..) {
            for &f in circuit.node(id).fanins() {
                if set.insert(f) {
                    next.push(f);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    set
}

/// The forward cone (transitive fanout) of `root`, including `root`.
pub fn cone_of_influence(circuit: &Circuit, fanouts: &Fanouts, root: NodeId) -> NodeSet {
    let mut set = NodeSet::new(circuit.num_nodes());
    let mut stack = vec![root];
    set.insert(root);
    while let Some(id) = stack.pop() {
        for &(succ, _) in fanouts.of(id) {
            if set.insert(succ) {
                stack.push(succ);
            }
        }
    }
    set
}

/// Joining-point search (`V(a,b)` in the paper, Fig. 2).
///
/// A node `x` is a *joining point* of `(a, b)` if it has at least two
/// immediate successors, one of which lies on a path to `a` and another on a
/// (different) path to `b`. A 2-input AND with inputs `a`, `b` has a
/// reconvergent fanout at its output iff `V(a,b)` is nonempty; the PROTEST
/// estimator conditions its probability on the logic values of a subset of
/// `V(a,b)`.
///
/// The search is bounded: only nodes within `max_depth` fanin edges of `a` or
/// `b` are considered (the paper's `MAXLIST` parameter).
#[derive(Debug)]
pub struct JoiningPoints {
    scratch_a: NodeSet,
    scratch_b: NodeSet,
}

impl JoiningPoints {
    /// Creates a reusable search context for one circuit size.
    pub fn new(circuit: &Circuit) -> Self {
        JoiningPoints {
            scratch_a: NodeSet::new(circuit.num_nodes()),
            scratch_b: NodeSet::new(circuit.num_nodes()),
        }
    }

    /// Computes `V(a, b)` bounded by `max_depth` (`MAXLIST`).
    ///
    /// Returns joining points in increasing node-id order.
    pub fn find(
        &mut self,
        circuit: &Circuit,
        fanouts: &Fanouts,
        a: NodeId,
        b: NodeId,
        max_depth: usize,
    ) -> Vec<NodeId> {
        self.scratch_a.clear();
        self.scratch_b.clear();
        bounded_cone_into(circuit, a, max_depth, &mut self.scratch_a);
        bounded_cone_into(circuit, b, max_depth, &mut self.scratch_b);
        let mut out = Vec::new();
        // Candidates must lie in both cones (a path to `a` and to `b` exists)
        // and must fan out through *different* immediate successors toward
        // `a` and `b`.
        for x in self.scratch_a.iter() {
            if !self.scratch_b.contains(x) {
                continue;
            }
            if fanouts.degree(x) < 2 {
                continue;
            }
            let mut to_a = false;
            let mut to_b = false;
            let mut distinct = false;
            for &(succ, _) in fanouts.of(x) {
                let sa = succ == a || self.scratch_a.contains(succ);
                let sb = succ == b || self.scratch_b.contains(succ);
                if sa && to_b || sb && to_a || (sa && sb) {
                    distinct = true;
                }
                to_a |= sa;
                to_b |= sb;
            }
            // `distinct` guards the degenerate case where a single successor
            // reaches both a and b but no second successor reaches either:
            // then x does not *join* at (a, b) through different branches.
            // A successor reaching both counts for either side.
            if to_a && to_b && distinct {
                out.push(x);
            }
        }
        out
    }
}

fn bounded_cone_into(circuit: &Circuit, root: NodeId, max_depth: usize, set: &mut NodeSet) {
    set.insert(root);
    let mut frontier = vec![root];
    for _ in 0..max_depth {
        let mut next = Vec::new();
        for id in frontier.drain(..) {
            for &f in circuit.node(id).fanins() {
                if set.insert(f) {
                    next.push(f);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    /// The circuit of the paper's Fig. 2: two stems x1, x2 joining at an AND.
    ///
    /// x1 fans out to g_a (toward a) and to x2's consumer side; x2 fans out
    /// toward both a and b; c = AND(a, b).
    #[test]
    fn fig2_joining_points() {
        let mut b = CircuitBuilder::new("fig2");
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let x1 = b.or2(i1, i2); // stem 1
        let x2 = b.not(x1); // stem 2 (downstream of x1)
        let a = b.and2(x1, x2);
        let bb = b.not(x2);
        let c = b.and2(a, bb);
        b.output(c, "c");
        let ckt = b.finish().unwrap();
        let fo = Fanouts::new(&ckt);
        assert!(fo.is_stem(x1));
        assert!(fo.is_stem(x2));
        let mut jp = JoiningPoints::new(&ckt);
        let v = jp.find(&ckt, &fo, a, bb, 10);
        assert_eq!(v, vec![x1, x2]);
    }

    #[test]
    fn no_joining_points_in_tree() {
        let mut b = CircuitBuilder::new("tree");
        let xs = b.input_bus("x", 4);
        let l = b.and2(xs[0], xs[1]);
        let r = b.and2(xs[2], xs[3]);
        let t = b.and2(l, r);
        b.output(t, "z");
        let ckt = b.finish().unwrap();
        let fo = Fanouts::new(&ckt);
        let mut jp = JoiningPoints::new(&ckt);
        assert!(jp.find(&ckt, &fo, l, r, 10).is_empty());
    }

    #[test]
    fn shared_input_is_joining_point() {
        // z = AND(NOT s, OR(s, t)) — s joins the two branches.
        let mut b = CircuitBuilder::new("c");
        let s = b.input("s");
        let t = b.input("t");
        let ns = b.not(s);
        let o = b.or2(s, t);
        let z = b.and2(ns, o);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let fo = Fanouts::new(&ckt);
        let mut jp = JoiningPoints::new(&ckt);
        assert_eq!(jp.find(&ckt, &fo, ns, o, 10), vec![s]);
    }

    #[test]
    fn depth_bound_limits_search() {
        // Put the joining point 3 levels behind `a`; a bound of 1 misses it.
        let mut b = CircuitBuilder::new("c");
        let s = b.input("s");
        let t = b.input("t");
        let n1 = b.not(s);
        let n2 = b.not(n1);
        let n3 = b.not(n2);
        let o = b.or2(s, t);
        let z = b.and2(n3, o);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let fo = Fanouts::new(&ckt);
        let mut jp = JoiningPoints::new(&ckt);
        assert_eq!(jp.find(&ckt, &fo, n3, o, 10), vec![s]);
        assert!(jp.find(&ckt, &fo, n3, o, 1).is_empty());
    }

    #[test]
    fn fanout_map_matches_fanins() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let x = b.not(a);
        let y = b.and2(a, x);
        let z = b.or2(a, y);
        b.output(z, "z");
        let ckt = b.finish().unwrap();
        let fo = Fanouts::new(&ckt);
        assert_eq!(fo.degree(a), 3);
        assert_eq!(fo.degree(x), 1);
        assert_eq!(fo.degree(z), 0);
        let mut pins: Vec<(NodeId, u8)> = fo.of(a).to_vec();
        pins.sort();
        assert_eq!(pins, vec![(x, 0), (y, 0), (z, 0)]);
    }

    #[test]
    fn cones() {
        let mut b = CircuitBuilder::new("c");
        let a = b.input("a");
        let c = b.input("c");
        let x = b.and2(a, c);
        let y = b.not(x);
        b.output(y, "z");
        let ckt = b.finish().unwrap();
        let fo = Fanouts::new(&ckt);
        let cone = fanin_cone(&ckt, y, 10);
        assert_eq!(cone.len(), 4);
        let bounded = fanin_cone(&ckt, y, 1);
        assert_eq!(bounded.len(), 2); // y and x only
        let coi = cone_of_influence(&ckt, &fo, a);
        assert!(coi.contains(y));
        assert!(!coi.contains(c));
    }
}
