//! Property-based functional verification of the generated circuits
//! against their behavioral models.

use proptest::prelude::*;
use protest_circuits::{
    alu_74181, alu_behavior, carry_lookahead_adder, comp24, comp24_behavior, div_nonrestoring,
    div_nonrestoring_behavior, mult_abcd, mult_abcd_behavior, ripple_adder,
};
use protest_sim::LogicSim;

fn drive(bits: &mut Vec<u64>, value: u64, width: usize) {
    for i in 0..width {
        bits.push(((value >> i) & 1) * !0u64);
    }
}

fn read(words: &[u64], lo: usize, width: usize) -> u64 {
    let mut v = 0u64;
    for i in 0..width {
        v |= (words[lo + i] & 1) << i;
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn adders_add(a in 0u64..256, b in 0u64..256, cin in 0u64..2) {
        for ckt in [ripple_adder(8), carry_lookahead_adder(8)] {
            let mut sim = LogicSim::new(&ckt);
            let mut inputs = Vec::new();
            drive(&mut inputs, a, 8);
            drive(&mut inputs, b, 8);
            inputs.push(cin * !0u64);
            let out = sim.run_block(&inputs);
            let got = read(&out, 0, 8) | ((out[8] & 1) << 8);
            prop_assert_eq!(got, a + b + cin, "{}", ckt.name());
        }
    }

    #[test]
    fn mult_abcd_computes(a in 0u64..256, b in 0u64..256, c in 0u64..256, d in 0u64..256) {
        let ckt = mult_abcd();
        let mut sim = LogicSim::new(&ckt);
        let mut inputs = Vec::new();
        drive(&mut inputs, a, 8);
        drive(&mut inputs, b, 8);
        drive(&mut inputs, c, 8);
        drive(&mut inputs, d, 8);
        let out = sim.run_block(&inputs);
        let got = read(&out, 0, 17);
        prop_assert_eq!(
            got,
            mult_abcd_behavior(a as u32, b as u32, c as u32, d as u32) as u64
        );
    }

    #[test]
    fn divider_divides(n in 0u64..65536, d in 0u64..65536) {
        let ckt = div_nonrestoring(16, 16);
        let mut sim = LogicSim::new(&ckt);
        let mut inputs = Vec::new();
        drive(&mut inputs, n, 16);
        drive(&mut inputs, d, 16);
        let out = sim.run_block(&inputs);
        let q = read(&out, 0, 16);
        let r = read(&out, 16, 18);
        let (wq, wr) = div_nonrestoring_behavior(16, 16, n, d);
        prop_assert_eq!((q, r), (wq, wr));
        if let Some(want) = n.checked_div(d) {
            prop_assert_eq!(q, want, "quotient must be exact for d > 0");
        }
    }

    #[test]
    fn comparator_compares(a in 0u32..0x100_0000, b in 0u32..0x100_0000, ti in 0usize..3) {
        let ckt = comp24();
        let mut sim = LogicSim::new(&ckt);
        let ti_bits = [(true, false, false), (false, true, false), (false, false, true)][ti];
        let mut inputs = Vec::new();
        drive(&mut inputs, a as u64, 24);
        drive(&mut inputs, b as u64, 24);
        inputs.push(u64::from(ti_bits.0) * !0);
        inputs.push(u64::from(ti_bits.1) * !0);
        inputs.push(u64::from(ti_bits.2) * !0);
        let out = sim.run_block(&inputs);
        let got = (out[0] & 1 == 1, out[1] & 1 == 1, out[2] & 1 == 1);
        prop_assert_eq!(got, comp24_behavior(a, b, ti_bits));
    }

    #[test]
    fn alu_matches_behavior(code in 0u32..(1 << 14)) {
        let ckt = alu_74181();
        let mut sim = LogicSim::new(&ckt);
        let a = (code & 0xF) as u8;
        let bv = ((code >> 4) & 0xF) as u8;
        let s = ((code >> 8) & 0xF) as u8;
        let m = (code >> 12) & 1 == 1;
        let cn = (code >> 13) & 1 == 1;
        let mut inputs = Vec::new();
        drive(&mut inputs, a as u64, 4);
        drive(&mut inputs, bv as u64, 4);
        drive(&mut inputs, s as u64, 4);
        inputs.push(u64::from(m) * !0);
        inputs.push(u64::from(cn) * !0);
        let out = sim.run_block(&inputs);
        let want = alu_behavior(a, bv, s, m, cn);
        prop_assert_eq!(read(&out, 0, 4) as u8, want.f);
        prop_assert_eq!(out[4] & 1 == 1, want.aeb);
        prop_assert_eq!(out[5] & 1 == 1, want.cn4);
        prop_assert_eq!(out[6] & 1 == 1, want.pbar);
        prop_assert_eq!(out[7] & 1 == 1, want.gbar);
    }
}
