//! "MULT": `A + B + C·D` on 8-bit operands, and the generic array
//! multiplier used for the size ladder.
//!
//! The paper builds MULT "according to the proposal of [Hart80]" with 1 568
//! gate equivalents; the proposal itself (a German journal article on
//! low-volume VLSI building blocks) is not available, so we use the textbook
//! structure: an 8×8 AND-matrix array multiplier with ripple accumulation,
//! an 8-bit adder for `A + B`, and a final 16-bit adder. The testability
//! character (deep carry chains, reconvergence through the adder array) is
//! the same; the exact gate-equivalent count differs and is recorded in
//! EXPERIMENTS.md.

use protest_netlist::{Circuit, CircuitBuilder, NodeId};

use crate::adders::{full_adder, half_adder, ripple_add};

/// Builds the partial-product array network for `c × d` inside `b`,
/// little-endian; returns the `2n`-bit product. Shared with the scalable
/// mesh generators in [`crate::scale`].
pub(crate) fn array_multiply(b: &mut CircuitBuilder, c: &[NodeId], d: &[NodeId]) -> Vec<NodeId> {
    let n = c.len();
    assert_eq!(n, d.len(), "operand widths must match");
    // Partial products pp[i][j] = c_j · d_i contribute to bit i+j.
    // Accumulate row by row in carry-save fashion: `acc` holds the current
    // sum bits for each weight; rows are added with FA/HA chains.
    let mut acc: Vec<NodeId> = (0..n).map(|j| b.and2(c[j], d[0])).collect();
    let mut product = Vec::with_capacity(2 * n);
    #[allow(clippy::needless_range_loop)]
    for i in 1..n {
        // acc currently holds bits of weight i-1 .. i-1+n-1; its lowest bit
        // is final.
        product.push(acc[0]);
        let row: Vec<NodeId> = (0..n).map(|j| b.and2(c[j], d[i])).collect();
        let mut next = Vec::with_capacity(n);
        let mut carry: Option<NodeId> = None;
        for j in 0..n {
            // Add acc[j+1] (weight i+j) + row[j] (+ carry).
            let base = acc.get(j + 1).copied();
            let (s, co) = match (base, carry) {
                (Some(x), Some(cy)) => full_adder(b, x, row[j], cy),
                (Some(x), None) => half_adder(b, x, row[j]),
                (None, Some(cy)) => half_adder(b, row[j], cy),
                (None, None) => unreachable!("first column always has an accumulator bit"),
            };
            next.push(s);
            carry = Some(co);
        }
        next.push(carry.expect("row addition yields a carry"));
        // next has n+1 bits of weights i .. i+n.
        acc = next;
    }
    product.extend(acc);
    // product: bits 0..n-2 pushed + acc of n+1 bits = 2n bits total.
    assert_eq!(product.len(), 2 * n);
    product
}

/// A standalone `n×n` array multiplier circuit: inputs `a0.., b0..`,
/// outputs `p0..p{2n-1}`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn mult_array(n: usize) -> Circuit {
    assert!(n >= 2, "multiplier width must be at least 2");
    let mut b = CircuitBuilder::new(format!("mult{n}x{n}"));
    let c = b.input_bus("a", n);
    let d = b.input_bus("b", n);
    let p = array_multiply(&mut b, &c, &d);
    for (i, bit) in p.iter().enumerate() {
        b.output(*bit, format!("p{i}"));
    }
    b.finish().expect("array multiplier construction is valid")
}

/// "MULT": computes `A + B + C·D` for 8-bit operands (paper Sec. 4).
///
/// Inputs (32): `a0..a7, b0..b7, c0..c7, d0..d7`. Outputs (17):
/// `r0..r16` (little-endian; `C·D` is 16 bits, adding `A + B` reaches 17).
pub fn mult_abcd() -> Circuit {
    let mut b = CircuitBuilder::new("mult");
    let a = b.input_bus("a", 8);
    let bv = b.input_bus("b", 8);
    let c = b.input_bus("c", 8);
    let d = b.input_bus("d", 8);

    // A + B → 9 bits.
    let (ab, ab_carry) = ripple_add(&mut b, &a, &bv, None);
    // C·D → 16 bits.
    let cd = array_multiply(&mut b, &c, &d);
    // (A+B) + C·D: widen A+B to 16 bits with constant zeros.
    let zero = b.constant(false);
    let mut ab_wide: Vec<NodeId> = ab.clone();
    ab_wide.push(ab_carry);
    while ab_wide.len() < 16 {
        ab_wide.push(zero);
    }
    let (sum, carry) = ripple_add(&mut b, &ab_wide, &cd, None);
    for (i, s) in sum.iter().enumerate() {
        b.output(*s, format!("r{i}"));
    }
    b.output(carry, "r16");
    b.finish().expect("MULT construction is valid")
}

/// Behavioral reference: `A + B + C·D`.
pub fn mult_abcd_behavior(a: u32, b: u32, c: u32, d: u32) -> u32 {
    a + b + c * d
}

#[cfg(test)]
mod tests {
    use protest_sim::LogicSim;

    use super::*;

    fn drive(bits: &mut Vec<u64>, value: u64, width: usize) {
        for i in 0..width {
            bits.push(((value >> i) & 1) * !0u64);
        }
    }

    #[test]
    fn small_multiplier_exhaustive() {
        let ckt = mult_array(3);
        let mut sim = LogicSim::new(&ckt);
        for a in 0..8u64 {
            for b in 0..8u64 {
                let mut inputs = Vec::new();
                drive(&mut inputs, a, 3);
                drive(&mut inputs, b, 3);
                let out = sim.run_block(&inputs);
                let mut got = 0u64;
                for (i, w) in out.iter().enumerate() {
                    got |= (w & 1) << i;
                }
                assert_eq!(got, a * b, "{a}×{b}");
            }
        }
    }

    #[test]
    fn mult8_grid() {
        let ckt = mult_array(8);
        let mut sim = LogicSim::new(&ckt);
        for &a in &[0u64, 1, 7, 85, 170, 200, 255] {
            for &b in &[0u64, 1, 3, 99, 128, 255] {
                let mut inputs = Vec::new();
                drive(&mut inputs, a, 8);
                drive(&mut inputs, b, 8);
                let out = sim.run_block(&inputs);
                let mut got = 0u64;
                for (i, w) in out.iter().enumerate() {
                    got |= (w & 1) << i;
                }
                assert_eq!(got, a * b, "{a}×{b}");
            }
        }
    }

    #[test]
    fn mult_abcd_matches_behavior() {
        let ckt = mult_abcd();
        assert_eq!(ckt.num_inputs(), 32);
        assert_eq!(ckt.num_outputs(), 17);
        let mut sim = LogicSim::new(&ckt);
        let cases = [
            (0u64, 0u64, 0u64, 0u64),
            (255, 255, 255, 255),
            (1, 2, 3, 4),
            (200, 100, 50, 25),
            (17, 211, 170, 85),
        ];
        for (a, b, c, d) in cases {
            let mut inputs = Vec::new();
            drive(&mut inputs, a, 8);
            drive(&mut inputs, b, 8);
            drive(&mut inputs, c, 8);
            drive(&mut inputs, d, 8);
            let out = sim.run_block(&inputs);
            let mut got = 0u64;
            for (i, w) in out.iter().enumerate() {
                got |= (w & 1) << i;
            }
            assert_eq!(
                got,
                mult_abcd_behavior(a as u32, b as u32, c as u32, d as u32) as u64,
                "A={a} B={b} C={c} D={d}"
            );
        }
    }

    #[test]
    fn mult_is_paper_scale() {
        // The paper quotes 1 568 gate equivalents; our textbook structure
        // lands in the same order of magnitude.
        let ckt = mult_abcd();
        let ge = protest_netlist::gate_equivalents(&ckt);
        assert!(
            (500..=3000).contains(&ge),
            "gate equivalents {ge} out of expected band"
        );
    }
}
