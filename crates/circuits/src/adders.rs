//! Gate-level adders: building blocks (used by the multiplier and divider)
//! and standalone circuits.

use protest_netlist::{Circuit, CircuitBuilder, NodeId};

/// Adds a full adder to `b`; returns `(sum, carry_out)`.
pub(crate) fn full_adder(
    b: &mut CircuitBuilder,
    x: NodeId,
    y: NodeId,
    cin: NodeId,
) -> (NodeId, NodeId) {
    let s1 = b.xor2_fold(x, y);
    let sum = b.xor2_fold(s1, cin);
    let c1 = b.and2_fold(x, y);
    let c2 = b.and2_fold(s1, cin);
    let cout = b.or2_fold(c1, c2);
    (sum, cout)
}

/// Adds a half adder to `b`; returns `(sum, carry_out)`.
pub(crate) fn half_adder(b: &mut CircuitBuilder, x: NodeId, y: NodeId) -> (NodeId, NodeId) {
    (b.xor2_fold(x, y), b.and2_fold(x, y))
}

/// Adds an `n`-bit ripple-carry adder network to `b`; returns
/// `(sum_bits, carry_out)`. `a` and `c` are little-endian.
pub(crate) fn ripple_add(
    b: &mut CircuitBuilder,
    a: &[NodeId],
    c: &[NodeId],
    cin: Option<NodeId>,
) -> (Vec<NodeId>, NodeId) {
    assert_eq!(a.len(), c.len(), "operand widths must match");
    assert!(!a.is_empty());
    let mut sums = Vec::with_capacity(a.len());
    let mut carry = cin;
    for i in 0..a.len() {
        let (s, co) = match carry {
            Some(cy) => full_adder(b, a[i], c[i], cy),
            None => half_adder(b, a[i], c[i]),
        };
        sums.push(s);
        carry = Some(co);
    }
    (sums, carry.expect("non-empty operands yield a carry"))
}

/// A standalone `n`-bit ripple-carry adder circuit: inputs `a0.. b0.. cin`,
/// outputs `s0..s{n-1}, cout`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ripple_adder(n: usize) -> Circuit {
    assert!(n > 0, "adder width must be positive");
    let mut b = CircuitBuilder::new(format!("rca{n}"));
    let a = b.input_bus("a", n);
    let c = b.input_bus("b", n);
    let cin = b.input("cin");
    let (sums, cout) = ripple_add(&mut b, &a, &c, Some(cin));
    for (i, s) in sums.iter().enumerate() {
        b.output(*s, format!("s{i}"));
    }
    b.output(cout, "cout");
    b.finish().expect("ripple adder construction is valid")
}

/// A standalone `n`-bit carry-lookahead adder (4-bit groups, ripple between
/// groups): same interface as [`ripple_adder`].
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn carry_lookahead_adder(n: usize) -> Circuit {
    assert!(n > 0, "adder width must be positive");
    let mut b = CircuitBuilder::new(format!("cla{n}"));
    let a = b.input_bus("a", n);
    let c = b.input_bus("b", n);
    let cin = b.input("cin");
    let mut sums = Vec::with_capacity(n);
    let mut group_cin = cin;
    for group in a.chunks(4).zip(c.chunks(4)) {
        let (ga, gc) = group;
        // p_i = a ⊕ b, g_i = a·b
        let ps: Vec<NodeId> = ga.iter().zip(gc).map(|(&x, &y)| b.xor2(x, y)).collect();
        let gs: Vec<NodeId> = ga.iter().zip(gc).map(|(&x, &y)| b.and2(x, y)).collect();
        // c_{i+1} = g_i ∨ p_i·g_{i-1} ∨ … ∨ p_i…p_0·cin  (flat lookahead)
        let mut carries = vec![group_cin];
        for i in 0..ga.len() {
            let mut terms: Vec<NodeId> = vec![gs[i]];
            for j in (0..=i).rev() {
                // p_i · p_{i-1} · … · p_j · (g_{j-1} or cin)
                let mut prod: Vec<NodeId> = ps[j..=i].to_vec();
                let last = if j == 0 { group_cin } else { gs[j - 1] };
                prod.push(last);
                terms.push(b.and(&prod));
            }
            carries.push(b.or(&terms));
        }
        for i in 0..ga.len() {
            sums.push(b.xor2(ps[i], carries[i]));
        }
        group_cin = *carries.last().expect("non-empty group");
    }
    for (i, s) in sums.iter().enumerate() {
        b.output(*s, format!("s{i}"));
    }
    b.output(group_cin, "cout");
    b.finish().expect("CLA construction is valid")
}

#[cfg(test)]
mod tests {
    use protest_sim::LogicSim;

    use super::*;

    fn check_adder(ckt: &Circuit, n: usize) {
        let mut sim = LogicSim::new(ckt);
        let limit = 1u64 << n;
        // Sweep a grid of operand pairs (exhaustive for small n).
        let step = if n <= 4 { 1 } else { (limit / 16).max(1) };
        let mut av = 0;
        while av < limit {
            let mut bv = 0;
            while bv < limit {
                for cin in 0..2u64 {
                    let mut inputs = Vec::with_capacity(2 * n + 1);
                    for i in 0..n {
                        inputs.push(((av >> i) & 1) * !0u64);
                    }
                    for i in 0..n {
                        inputs.push(((bv >> i) & 1) * !0u64);
                    }
                    inputs.push(cin * !0u64);
                    let out = sim.run_block(&inputs);
                    let mut got = 0u64;
                    for (i, w) in out.iter().take(n).enumerate() {
                        got |= (w & 1) << i;
                    }
                    let cout = out[n] & 1;
                    let want = av + bv + cin;
                    assert_eq!(got | (cout << n), want, "a={av} b={bv} cin={cin}");
                }
                bv += step;
            }
            av += step;
        }
    }

    #[test]
    fn ripple_adder_4_exhaustive() {
        check_adder(&ripple_adder(4), 4);
    }

    #[test]
    fn ripple_adder_8_grid() {
        check_adder(&ripple_adder(8), 8);
    }

    #[test]
    fn cla_4_exhaustive() {
        check_adder(&carry_lookahead_adder(4), 4);
    }

    #[test]
    fn cla_10_grid_with_partial_group() {
        check_adder(&carry_lookahead_adder(10), 10);
    }
}
