//! The TTL SN74181 4-bit ALU — "ALU" in the paper's evaluation.
//!
//! Rebuilt gate-by-gate from the datasheet logic diagram: per-bit AND/NOR
//! first level producing the internal active-low signals `E_i` (propagate
//! complement) and `D_i` (generate complement), a ripple/lookahead internal
//! carry chain gated by the mode input `M`, XOR sum outputs, and the
//! `A=B`, `C_{n+4}`, `P̄`, `Ḡ` auxiliary outputs.
//!
//! Input order (14): `a0..a3, b0..b3, s0..s3, m, cn`. The carry pin `cn` is
//! active-low for active-high data (as on the real part): the effective
//! arithmetic carry-in is `¬cn`.

use protest_netlist::{Circuit, CircuitBuilder, NodeId};

/// Node-level output bundle of one embedded 74181 slice (see [`alu_slice`]).
pub(crate) struct AluSliceNodes {
    /// 4-bit function output.
    pub(crate) f: [NodeId; 4],
    /// `A = B` comparator output.
    pub(crate) aeb: NodeId,
    /// Active-low ripple carry out (feed to the next slice's `cn`).
    pub(crate) cn4: NodeId,
    /// Group propagate (active low).
    pub(crate) pbar: NodeId,
    /// Group generate (active low).
    pub(crate) gbar: NodeId,
}

/// Adds one SN74181 slice to `b` (datasheet logic diagram, gate by gate).
///
/// `a`/`bb`/`s` are 4-bit buses; `m` is the mode pin and `cn` the
/// active-low carry-in. The same network [`alu_74181`] wraps as a
/// standalone circuit, reusable as the tile of the scalable ALU meshes.
pub(crate) fn alu_slice(
    b: &mut CircuitBuilder,
    a: &[NodeId],
    bb: &[NodeId],
    s: &[NodeId],
    m: NodeId,
    cn: NodeId,
) -> AluSliceNodes {
    assert_eq!(a.len(), 4, "74181 slices are 4 bits wide");
    assert_eq!(bb.len(), 4, "74181 slices are 4 bits wide");
    assert_eq!(s.len(), 4, "74181 slices take 4 select lines");
    // First level, per bit: E_i = NOR(a, b·s0, ¬b·s1),
    //                       D_i = NOR(a·¬b·s2, a·b·s3).
    let mut e = Vec::with_capacity(4);
    let mut d = Vec::with_capacity(4);
    let mut p = Vec::with_capacity(4); // propagate  = ¬E
    let mut g = Vec::with_capacity(4); // generate   = ¬D
    for i in 0..4 {
        let nb = b.not(bb[i]);
        let t1 = b.and2(bb[i], s[0]);
        let t2 = b.and2(nb, s[1]);
        let ei = b.nor(&[a[i], t1, t2]);
        let t3 = b.and(&[a[i], nb, s[2]]);
        let t4 = b.and(&[a[i], bb[i], s[3]]);
        let di = b.nor2(t3, t4);
        p.push(b.not(ei));
        g.push(b.not(di));
        e.push(ei);
        d.push(di);
    }

    // Internal carries (active high): c0 = ¬cn; c_{i+1} = g_i ∨ p_i·c_i.
    let c0 = b.not(cn);
    let mut carries = vec![c0];
    for i in 0..4 {
        let t = b.and2(p[i], carries[i]);
        carries.push(b.or2(g[i], t));
    }

    // Sum outputs: F_i = (E_i ⊕ D_i) ⊕ (M ∨ c_i). In logic mode the OR
    // forces the carry term to 1, yielding F = ¬(E ⊕ D).
    let mut f = Vec::with_capacity(4);
    for i in 0..4 {
        let ed = b.xor2(e[i], d[i]);
        let ce = b.or2(m, carries[i]);
        f.push(b.xor2(ed, ce));
    }

    // Auxiliary outputs.
    let aeb = b.and(&f); // open-collector A=B: F == 1111
    let cn4 = b.not(carries[4]); // active-low carry out
    let pbar = b.nand(&p); // P̄ = ¬(p3·p2·p1·p0)
                           // Ḡ = ¬(g3 ∨ p3·g2 ∨ p3·p2·g1 ∨ p3·p2·p1·g0)
    let y1 = b.and2(p[3], g[2]);
    let y2 = b.and(&[p[3], p[2], g[1]]);
    let y3 = b.and(&[p[3], p[2], p[1], g[0]]);
    let gbar = b.nor(&[g[3], y1, y2, y3]);
    AluSliceNodes {
        f: [f[0], f[1], f[2], f[3]],
        aeb,
        cn4,
        pbar,
        gbar,
    }
}

/// Builds the SN74181 gate-level circuit.
///
/// Outputs (8): `f0..f3, aeb, cn4, pbar, gbar`.
pub fn alu_74181() -> Circuit {
    let mut b = CircuitBuilder::new("alu74181");
    let a = b.input_bus("a", 4);
    let bb = b.input_bus("b", 4);
    let s = b.input_bus("s", 4);
    let m = b.input("m");
    let cn = b.input("cn");
    let slice = alu_slice(&mut b, &a, &bb, &s, m, cn);
    for (i, fi) in slice.f.iter().enumerate() {
        b.output(*fi, format!("f{i}"));
    }
    b.output(slice.aeb, "aeb");
    b.output(slice.cn4, "cn4");
    b.output(slice.pbar, "pbar");
    b.output(slice.gbar, "gbar");
    b.finish().expect("74181 construction is valid")
}

/// The ALU's output bundle, as plain values (behavioral model output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluOutputs {
    /// 4-bit function output.
    pub f: u8,
    /// `A = B` comparator output (`F == 0b1111`).
    pub aeb: bool,
    /// Active-low ripple carry out.
    pub cn4: bool,
    /// Active-low carry propagate.
    pub pbar: bool,
    /// Active-low carry generate.
    pub gbar: bool,
}

/// Behavioral SN74181 model derived from the datasheet function table:
/// per-bit `p = a ∨ b·s0 ∨ ¬b·s1`, `g = a·(¬b·s2 ∨ b·s3)`; logic mode
/// computes `F_i = ¬(p_i ⊕ g_i)`, arithmetic mode adds the two virtual
/// operands (`x_i + y_i = p_i + g_i`) plus `¬cn`.
///
/// All data pins are active-high; `cn`/`cn4` are active-low carries.
pub fn alu_behavior(a: u8, bv: u8, s: u8, m: bool, cn: bool) -> AluOutputs {
    let mut p = [false; 4];
    let mut g = [false; 4];
    for i in 0..4 {
        let ai = (a >> i) & 1 == 1;
        let bi = (bv >> i) & 1 == 1;
        let s0 = s & 1 == 1;
        let s1 = (s >> 1) & 1 == 1;
        let s2 = (s >> 2) & 1 == 1;
        let s3 = (s >> 3) & 1 == 1;
        p[i] = ai || (bi && s0) || (!bi && s1);
        g[i] = ai && ((!bi && s2) || (bi && s3));
    }
    // The carry chain runs from p/g/cn regardless of mode (only the sum
    // XORs see M-gated carries on the real part), so Cn+4 is live in logic
    // mode too.
    let cin = u32::from(!cn);
    let total: u32 = (0..4)
        .map(|i| ((p[i] as u32) + (g[i] as u32)) << i)
        .sum::<u32>()
        + cin;
    let c4 = total >= 16;
    let f = if m {
        let mut f = 0u8;
        for i in 0..4 {
            if !(p[i] ^ g[i]) {
                f |= 1 << i;
            }
        }
        f
    } else {
        (total & 0xF) as u8
    };
    let pbar = !(p[0] && p[1] && p[2] && p[3]);
    let gbar =
        !(g[3] || (p[3] && g[2]) || (p[3] && p[2] && g[1]) || (p[3] && p[2] && p[1] && g[0]));
    AluOutputs {
        f,
        aeb: f == 0xF,
        cn4: !c4,
        pbar,
        gbar,
    }
}

#[cfg(test)]
mod tests {
    use protest_sim::LogicSim;

    use super::*;

    fn run_gate_level(
        sim: &mut LogicSim<'_>,
        a: u8,
        bv: u8,
        s: u8,
        m: bool,
        cn: bool,
    ) -> AluOutputs {
        let mut inputs = Vec::with_capacity(14);
        for i in 0..4 {
            inputs.push((((a >> i) & 1) as u64) * !0);
        }
        for i in 0..4 {
            inputs.push((((bv >> i) & 1) as u64) * !0);
        }
        for i in 0..4 {
            inputs.push((((s >> i) & 1) as u64) * !0);
        }
        inputs.push(u64::from(m) * !0);
        inputs.push(u64::from(cn) * !0);
        let out = sim.run_block(&inputs);
        let mut f = 0u8;
        #[allow(clippy::needless_range_loop)]
        for i in 0..4 {
            f |= ((out[i] & 1) as u8) << i;
        }
        AluOutputs {
            f,
            aeb: out[4] & 1 == 1,
            cn4: out[5] & 1 == 1,
            pbar: out[6] & 1 == 1,
            gbar: out[7] & 1 == 1,
        }
    }

    #[test]
    fn gate_level_matches_behavior_exhaustively() {
        let ckt = alu_74181();
        assert_eq!(ckt.num_inputs(), 14);
        assert_eq!(ckt.num_outputs(), 8);
        let mut sim = LogicSim::new(&ckt);
        for code in 0..(1u32 << 14) {
            let a = (code & 0xF) as u8;
            let bv = ((code >> 4) & 0xF) as u8;
            let s = ((code >> 8) & 0xF) as u8;
            let m = (code >> 12) & 1 == 1;
            let cn = (code >> 13) & 1 == 1;
            let want = alu_behavior(a, bv, s, m, cn);
            let got = run_gate_level(&mut sim, a, bv, s, m, cn);
            assert_eq!(got, want, "a={a} b={bv} s={s:04b} m={m} cn={cn}");
        }
    }

    #[test]
    fn datasheet_rows_add_subtract() {
        // S=1001, M=0 (L): F = A plus B (plus 1 if cn low).
        for a in 0..16u8 {
            for bv in 0..16u8 {
                let r = alu_behavior(a, bv, 0b1001, false, true);
                assert_eq!(r.f, (a + bv) & 0xF, "add {a}+{bv}");
                assert_eq!(r.cn4, (a as u32 + bv as u32) < 16, "carry {a}+{bv}");
                let r1 = alu_behavior(a, bv, 0b1001, false, false);
                assert_eq!(r1.f, (a + bv + 1) & 0xF, "add+1 {a}+{bv}");
                // S=0110, M=0: A minus B minus 1 plus ¬cn.
                let rs = alu_behavior(a, bv, 0b0110, false, false);
                assert_eq!(rs.f, a.wrapping_sub(bv) & 0xF, "sub {a}-{bv}");
            }
        }
    }

    #[test]
    fn datasheet_rows_logic() {
        for a in 0..16u8 {
            for bv in 0..16u8 {
                // M=1 rows: S=0110 → A⊕B, S=1011 → AB, S=1110 → A∨B,
                // S=0000 → ¬A, S=1010 → B, S=1111 → A.
                assert_eq!(alu_behavior(a, bv, 0b0110, true, true).f, a ^ bv);
                assert_eq!(alu_behavior(a, bv, 0b1011, true, true).f, a & bv);
                assert_eq!(alu_behavior(a, bv, 0b1110, true, true).f, a | bv);
                assert_eq!(alu_behavior(a, bv, 0b0000, true, true).f, !a & 0xF);
                assert_eq!(alu_behavior(a, bv, 0b1010, true, true).f, bv);
                assert_eq!(alu_behavior(a, bv, 0b1111, true, true).f, a);
            }
        }
    }

    #[test]
    fn aeb_flags_equality_in_subtract_mode() {
        // Classic usage: S=0110 M=0 cn=H computes A−B−1; A=B ⇔ F=1111.
        for a in 0..16u8 {
            for bv in 0..16u8 {
                let r = alu_behavior(a, bv, 0b0110, false, true);
                assert_eq!(r.aeb, a == bv, "a={a} b={bv}");
            }
        }
    }

    #[test]
    fn size_is_plausible_for_the_part() {
        let ckt = alu_74181();
        // The real part is ~60–75 gate equivalents.
        let gates = ckt.num_gates();
        assert!((50..=90).contains(&gates), "unexpected gate count {gates}");
    }
}
