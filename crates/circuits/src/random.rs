//! Seeded random circuit generation for property-based cross-validation.

use protest_netlist::{Circuit, CircuitBuilder, GateKind, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_circuit`].
#[derive(Debug, Clone, Copy)]
pub struct RandomCircuitParams {
    /// Number of primary inputs (≥ 1).
    pub inputs: usize,
    /// Number of gates to generate (≥ 1).
    pub gates: usize,
    /// Number of primary outputs (≥ 1, ≤ inputs + gates).
    pub outputs: usize,
    /// RNG seed; equal seeds give identical circuits.
    pub seed: u64,
}

impl Default for RandomCircuitParams {
    fn default() -> Self {
        RandomCircuitParams {
            inputs: 8,
            gates: 40,
            outputs: 4,
            seed: 0,
        }
    }
}

/// Generates a random combinational DAG.
///
/// Gates draw their kind from {AND, OR, NAND, NOR, XOR, NOT} and their
/// fanins from earlier nodes with a recency bias (trades depth against
/// reconvergence, both of which the estimators must handle). Outputs are
/// drawn preferentially from sink nodes so most logic stays observable.
///
/// # Panics
///
/// Panics if any parameter is zero or `outputs > inputs + gates`.
pub fn random_circuit(params: RandomCircuitParams) -> Circuit {
    assert!(params.inputs > 0, "need at least one input");
    assert!(params.gates > 0, "need at least one gate");
    assert!(params.outputs > 0, "need at least one output");
    assert!(
        params.outputs <= params.inputs + params.gates,
        "more outputs than nodes"
    );
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut b = CircuitBuilder::new(format!("rand_{}", params.seed));
    let mut pool: Vec<NodeId> = b.input_bus("x", params.inputs);

    for _ in 0..params.gates {
        let kind = match rng.gen_range(0..12u32) {
            0..=2 => GateKind::And,
            3..=5 => GateKind::Or,
            6..=7 => GateKind::Nand,
            8..=9 => GateKind::Nor,
            10 => GateKind::Xor,
            _ => GateKind::Not,
        };
        let arity = if kind == GateKind::Not {
            1
        } else {
            rng.gen_range(2..=3usize)
        };
        let mut fanins = Vec::with_capacity(arity);
        for _ in 0..arity {
            // Recency bias: half the picks come from the newest quarter.
            let idx = if rng.gen_bool(0.5) && pool.len() > 4 {
                rng.gen_range(pool.len() * 3 / 4..pool.len())
            } else {
                rng.gen_range(0..pool.len())
            };
            fanins.push(pool[idx]);
        }
        pool.push(b.gate(kind, &fanins));
    }

    // Newest nodes are the likeliest sinks: walk the pool from the back.
    let mut chosen = std::collections::HashSet::new();
    let candidates: Vec<NodeId> = pool.iter().rev().copied().collect();
    let mut outputs = Vec::new();
    for c in candidates {
        if outputs.len() >= params.outputs {
            break;
        }
        if chosen.insert(c) {
            outputs.push(c);
        }
    }
    for (i, o) in outputs.iter().enumerate() {
        b.output(*o, format!("z{i}"));
    }
    b.finish().expect("random circuit construction is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let p = RandomCircuitParams {
            inputs: 6,
            gates: 30,
            outputs: 3,
            seed: 7,
        };
        let a = random_circuit(p);
        let b = random_circuit(p);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut p = RandomCircuitParams::default();
        let a = random_circuit(p);
        p.seed = 1;
        let b = random_circuit(p);
        assert_ne!(a, b);
    }

    #[test]
    fn respects_sizes() {
        let p = RandomCircuitParams {
            inputs: 5,
            gates: 20,
            outputs: 4,
            seed: 3,
        };
        let c = random_circuit(p);
        assert_eq!(c.num_inputs(), 5);
        assert_eq!(c.num_gates(), 20);
        assert_eq!(c.num_outputs(), 4);
        assert!(c.validate().is_ok());
    }
}
