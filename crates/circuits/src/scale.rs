//! Scalable synthetic circuits for industrial-size analysis runs.
//!
//! Two generator families tile the paper's own building blocks into meshes
//! of 10⁴–10⁶ gates with realistic structure (deep carry chains,
//! reconvergent adder arrays, ripple cascades):
//!
//! * [`mult_mesh`] — *pipelined multiplier arrays*: each lane is a chain of
//!   `stages` array multipliers where a stage multiplies the low half of
//!   the previous product by a fresh operand; the high half is tapped as a
//!   primary output, so every gate stays observable.
//! * [`alu_mesh`] — *interconnected ALU meshes*: each lane cascades SN74181
//!   slices ([`crate::alu_74181`]'s tile), the function output feeding the
//!   next stage's `A` operand and the ripple carry feeding its `cn`.
//!
//! Both come in a **coupled** form (lanes cross-linked into one connected
//! component — the realistic shape) and an **uncoupled** form (each lane an
//! independent component — exactly what the partitioned analysis path
//! decomposes, so the differential tests can compare partitioned against
//! monolithic results on them).
//!
//! [`mesh_by_spec`] resolves compact spec strings (`multmesh:4x12x64`,
//! `alumesh:16x48:uncoupled`) so the CLI, the serve daemon and CI smoke
//! runs can name these circuits without files.

use protest_netlist::{Circuit, CircuitBuilder, NodeId};

use crate::alu::alu_slice;
use crate::multiplier::array_multiply;

/// A pipelined multiplier-array mesh.
///
/// `lanes` parallel pipelines, each `stages` deep, built from `width`-bit
/// array multipliers (~`6·width²` gates per tile). Lane `c` starts from
/// input bus `a{c}_*`; stage `r` multiplies the running low half by input
/// bus `m{c}_{r}_*`, taps the high half as outputs `h{c}_{r}_*`, and the
/// final stage emits the full product `p{c}_*`.
///
/// When `coupled`, the top product bit of lane `c-1`'s stage `r` is XORed
/// into lane `c`'s stage-`r` operand, welding all lanes into one connected
/// component; when uncoupled the mesh has exactly `lanes` components.
///
/// # Panics
///
/// Panics if `width < 2` or `stages`/`lanes` is zero.
pub fn mult_mesh(width: usize, stages: usize, lanes: usize, coupled: bool) -> Circuit {
    assert!(width >= 2, "multiplier width must be at least 2");
    assert!(
        stages >= 1 && lanes >= 1,
        "mesh dimensions must be positive"
    );
    let suffix = if coupled { "" } else { "u" };
    let mut b = CircuitBuilder::new(format!("multmesh{width}x{stages}x{lanes}{suffix}"));
    let mut prev_links: Vec<NodeId> = Vec::new();
    for c in 0..lanes {
        let mut acc = b.input_bus(&format!("a{c}_"), width);
        let mut links = Vec::with_capacity(stages);
        for r in 0..stages {
            let mut m = b.input_bus(&format!("m{c}_{r}_"), width);
            // `prev_links` is empty on lane 0, full from lane 1 on.
            if coupled {
                if let Some(&link) = prev_links.get(r) {
                    m[0] = b.xor2(m[0], link);
                }
            }
            let p = array_multiply(&mut b, &acc, &m);
            links.push(p[2 * width - 1]);
            if r + 1 == stages {
                for (i, &bit) in p.iter().enumerate() {
                    b.output(bit, format!("p{c}_{i}"));
                }
            } else {
                for (i, &bit) in p[width..].iter().enumerate() {
                    b.output(bit, format!("h{c}_{r}_{i}"));
                }
            }
            acc = p[..width].to_vec();
        }
        prev_links = links;
    }
    b.finish().expect("multiplier mesh construction is valid")
}

/// An interconnected mesh of SN74181 ALU slices.
///
/// `lanes` cascades, each `stages` deep. Lane `c` has its own select bus
/// `s{c}_*`, mode `m{c}`, seed operand `a{c}_*` and carry-in `cn{c}`;
/// stage `r` combines the running accumulator with input bus `b{c}_{r}_*`,
/// its `F` output becoming the next stage's `A` and its `cn4` the next
/// carry-in (the standard 74181 ripple cascade). Every stage taps
/// `aeb`/`P̄`/`Ḡ` as outputs; the final stage emits `f{c}_*` and
/// `cout{c}`.
///
/// When `coupled`, lane `c-1`'s stage-`r` carry-out is XORed into lane
/// `c`'s stage-`r` `B` operand (one connected component); otherwise the
/// mesh has exactly `lanes` components.
///
/// # Panics
///
/// Panics if `stages` or `lanes` is zero.
pub fn alu_mesh(stages: usize, lanes: usize, coupled: bool) -> Circuit {
    assert!(
        stages >= 1 && lanes >= 1,
        "mesh dimensions must be positive"
    );
    let suffix = if coupled { "" } else { "u" };
    let mut b = CircuitBuilder::new(format!("alumesh{stages}x{lanes}{suffix}"));
    let mut prev_carries: Vec<NodeId> = Vec::new();
    for c in 0..lanes {
        let s = b.input_bus(&format!("s{c}_"), 4);
        let m = b.input(format!("m{c}"));
        let mut acc: Vec<NodeId> = b.input_bus(&format!("a{c}_"), 4);
        let mut cn = b.input(format!("cn{c}"));
        let mut carries = Vec::with_capacity(stages);
        for r in 0..stages {
            let mut bb = b.input_bus(&format!("b{c}_{r}_"), 4);
            // `prev_carries` is empty on lane 0, full from lane 1 on.
            if coupled {
                if let Some(&carry) = prev_carries.get(r) {
                    bb[0] = b.xor2(bb[0], carry);
                }
            }
            let slice = alu_slice(&mut b, &acc, &bb, &s, m, cn);
            carries.push(slice.cn4);
            b.output(slice.aeb, format!("aeb{c}_{r}"));
            b.output(slice.pbar, format!("pb{c}_{r}"));
            b.output(slice.gbar, format!("gb{c}_{r}"));
            if r + 1 == stages {
                for (i, &fi) in slice.f.iter().enumerate() {
                    b.output(fi, format!("f{c}_{i}"));
                }
                b.output(slice.cn4, format!("cout{c}"));
            }
            acc = slice.f.to_vec();
            cn = slice.cn4;
        }
        prev_carries = carries;
    }
    b.finish().expect("ALU mesh construction is valid")
}

/// Upper bound on `stages × lanes` accepted by [`mesh_by_spec`] — keeps a
/// mistyped spec from trying to allocate a billion-gate netlist.
pub const MAX_MESH_TILES: usize = 1 << 16;

/// Resolves a mesh spec string to a circuit.
///
/// Grammar (all numbers decimal):
///
/// ```text
/// multmesh:<width>x<stages>x<lanes>[:uncoupled]
/// alumesh:<stages>x<lanes>[:uncoupled]
/// ```
///
/// `multmesh:4x12x64` is ≈ 50 k gates; `alumesh:16x48` ≈ 50 k as well.
/// Returns `None` for anything that does not parse, `width` outside
/// `2..=16`, or more than [`MAX_MESH_TILES`] tiles.
pub fn mesh_by_spec(spec: &str) -> Option<Circuit> {
    let mut parts = spec.split(':');
    let family = parts.next()?;
    let dims = parts.next()?;
    let coupled = match parts.next() {
        None => true,
        Some("uncoupled") => false,
        Some(_) => return None,
    };
    if parts.next().is_some() {
        return None;
    }
    let nums: Option<Vec<usize>> = dims.split('x').map(|t| t.parse().ok()).collect();
    match (family, nums?.as_slice()) {
        ("multmesh", &[w, s, l])
            if (2..=16).contains(&w) && s >= 1 && l >= 1 && s.checked_mul(l)? <= MAX_MESH_TILES =>
        {
            Some(mult_mesh(w, s, l, coupled))
        }
        ("alumesh", &[s, l]) if s >= 1 && l >= 1 && s.checked_mul(l)? <= MAX_MESH_TILES => {
            Some(alu_mesh(s, l, coupled))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use protest_sim::LogicSim;

    use super::*;
    use crate::alu_behavior;

    fn drive(bits: &mut Vec<u64>, value: u64, width: usize) {
        for i in 0..width {
            bits.push(((value >> i) & 1) * !0u64);
        }
    }

    /// Counts connected components of the circuit's fanin graph.
    fn component_count(ckt: &Circuit) -> usize {
        let n = ckt.num_nodes();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (id, node) in ckt.iter() {
            for &f in node.fanins() {
                let (a, b) = (find(&mut parent, id.index()), find(&mut parent, f.index()));
                parent[a] = b;
            }
        }
        let mut roots: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }

    #[test]
    fn mult_mesh_computes_pipelined_products() {
        let (w, stages, lanes) = (3usize, 2usize, 2usize);
        let ckt = mult_mesh(w, stages, lanes, false);
        let mut sim = LogicSim::new(&ckt);
        let cases = [(3u64, 5u64, 7u64, 2u64, 6u64, 1u64), (7, 7, 7, 1, 4, 6)];
        for (a0, m00, m01, a1, m10, m11) in cases {
            let mut inputs = Vec::new();
            for (a, m0, m1) in [(a0, m00, m01), (a1, m10, m11)] {
                drive(&mut inputs, a, w);
                drive(&mut inputs, m0, w);
                drive(&mut inputs, m1, w);
            }
            let out = sim.run_block(&inputs);
            let mut bits = out.iter().map(|&x| x & 1);
            for (a, m0, m1) in [(a0, m00, m01), (a1, m10, m11)] {
                let p0 = a * m0;
                let p1 = (p0 % (1 << w)) * m1;
                // Stage-0 high tap, then the final full product.
                for i in 0..w {
                    assert_eq!(bits.next().unwrap(), (p0 >> (w + i)) & 1, "h tap bit {i}");
                }
                for i in 0..2 * w {
                    assert_eq!(bits.next().unwrap(), (p1 >> i) & 1, "product bit {i}");
                }
            }
            assert!(bits.next().is_none());
        }
    }

    #[test]
    fn alu_mesh_matches_cascaded_behavior() {
        let (stages, lanes) = (3usize, 2usize);
        let ckt = alu_mesh(stages, lanes, false);
        let mut sim = LogicSim::new(&ckt);
        // Lane params: (s, m, a, cn, [b per stage]).
        let lanes_in = [
            (
                0b1001u64,
                0u64,
                0b0101u64,
                1u64,
                [0b0011u64, 0b1110, 0b0110],
            ),
            (0b0110, 1, 0b1111, 0, [0b1010, 0b0001, 0b1100]),
        ];
        let mut inputs = Vec::new();
        for (s, m, a, cn, bs) in lanes_in {
            drive(&mut inputs, s, 4);
            drive(&mut inputs, m, 1);
            drive(&mut inputs, a, 4);
            drive(&mut inputs, cn, 1);
            for bv in bs {
                drive(&mut inputs, bv, 4);
            }
        }
        let out = sim.run_block(&inputs);
        let mut bits = out.iter().map(|&x| x & 1 == 1);
        for (s, m, a, cn, bs) in lanes_in {
            let mut acc = a as u8;
            let mut carry = cn == 1;
            for (r, bv) in bs.iter().enumerate() {
                let res = alu_behavior(acc, *bv as u8, s as u8, m == 1, carry);
                assert_eq!(bits.next().unwrap(), res.aeb, "aeb stage {r}");
                assert_eq!(bits.next().unwrap(), res.pbar, "pbar stage {r}");
                assert_eq!(bits.next().unwrap(), res.gbar, "gbar stage {r}");
                if r + 1 == bs.len() {
                    for i in 0..4 {
                        assert_eq!(bits.next().unwrap(), (res.f >> i) & 1 == 1, "f bit {i}");
                    }
                    assert_eq!(bits.next().unwrap(), res.cn4, "cout");
                }
                acc = res.f;
                carry = res.cn4;
            }
        }
        assert!(bits.next().is_none());
    }

    #[test]
    fn coupling_controls_component_count() {
        let un = mult_mesh(2, 2, 5, false);
        assert_eq!(component_count(&un), 5);
        let co = mult_mesh(2, 2, 5, true);
        assert_eq!(component_count(&co), 1);
        let un = alu_mesh(2, 4, false);
        assert_eq!(component_count(&un), 4);
        let co = alu_mesh(2, 4, true);
        assert_eq!(component_count(&co), 1);
    }

    #[test]
    fn meshes_reach_industrial_sizes() {
        // ~10⁴ gates in well under a second; the 10⁵–10⁶ configurations
        // are the same code with bigger dimensions (exercised by the
        // scaling bench, not the unit suite).
        let ckt = mult_mesh(4, 6, 30, true);
        assert!(ckt.num_gates() >= 10_000, "got {} gates", ckt.num_gates());
        let alu = alu_mesh(8, 20, true);
        assert!(alu.num_gates() >= 10_000, "got {} gates", alu.num_gates());
    }

    #[test]
    fn spec_strings_resolve() {
        let ckt = mesh_by_spec("multmesh:2x2x3").unwrap();
        assert_eq!(ckt.name(), "multmesh2x2x3");
        let ckt = mesh_by_spec("multmesh:2x2x3:uncoupled").unwrap();
        assert_eq!(ckt.name(), "multmesh2x2x3u");
        assert_eq!(component_count(&ckt), 3);
        let ckt = mesh_by_spec("alumesh:2x2").unwrap();
        assert_eq!(ckt.name(), "alumesh2x2");
        for bad in [
            "multmesh:2x2",       // missing dimension
            "alumesh:2x2x2",      // extra dimension
            "multmesh:1x2x2",     // width too small
            "multmesh:17x2x2",    // width too large
            "multmesh:4x0x2",     // zero dimension
            "multmesh:4x2x2:xyz", // bad suffix
            "alumesh:9999x9999",  // over the tile cap
            "frobmesh:2x2",       // unknown family
            "multmesh:2x2x2:uncoupled:extra",
        ] {
            assert!(mesh_by_spec(bad).is_none(), "spec `{bad}` must not parse");
        }
    }
}
