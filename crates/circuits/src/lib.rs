//! Gate-level benchmark circuits for the PROTEST reproduction.
//!
//! The paper evaluates four circuits, none of which ship with it. This crate
//! rebuilds all of them from their public structures, plus the generic
//! building blocks and generators used by tests and the scaling benches:
//!
//! * [`alu_74181`] — the TTL SN74181 4-bit ALU ("ALU" in the paper), rebuilt
//!   gate-by-gate from the datasheet logic diagram and verified against a
//!   behavioral model of its function table.
//! * [`mult_abcd`] — "MULT": computes `A + B + C·D` on 8-bit operands
//!   (array multiplier + ripple adders, after the \[Hart80\] proposal).
//! * [`div16`] — "DIV": the combinational part of a 16-bit restoring array
//!   divider (16-bit dividend, 8-bit divisor).
//! * [`comp24`] — "COMP": a 24-bit word comparator cascaded from 16 slightly
//!   modified SN7485 4-bit comparator slices (paper Fig. 7), with cascade
//!   inputs `TI1..TI3`.
//! * [`sn7485`] — a faithful standalone SN7485 slice.
//! * [`c17`], [`ripple_adder`], [`carry_lookahead_adder`], [`parity_tree`],
//!   [`mux_tree`], [`decoder`] — classic structures for tests and examples.
//! * [`random_circuit`] — a seeded random DAG generator for property-based
//!   cross-validation.
//! * [`size_ladder`] — a family of growing multiplier circuits standing in
//!   for the unnamed circuit ladder of the paper's Tables 7/8.
//! * [`mult_mesh`] / [`alu_mesh`] — scalable synthetic meshes (10⁴–10⁶
//!   gates) for industrial-size analysis runs, resolvable from spec strings
//!   via [`mesh_by_spec`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adders;
mod alu;
mod comparator;
mod divider;
mod misc;
mod multiplier;
mod random;
mod scale;

pub use adders::{carry_lookahead_adder, ripple_adder};
pub use alu::{alu_74181, alu_behavior, AluOutputs};
pub use comparator::{comp24, comp24_behavior, sn7485, CompareResult};
pub use divider::{div16, div_array, div_behavior, div_nonrestoring, div_nonrestoring_behavior};
pub use misc::{c17, decoder, mux_tree, parity_tree};
pub use multiplier::{mult_abcd, mult_abcd_behavior, mult_array};
pub use random::{random_circuit, RandomCircuitParams};
pub use scale::{alu_mesh, mesh_by_spec, mult_mesh, MAX_MESH_TILES};

/// The built-in circuit names [`by_name`] resolves, in presentation order.
///
/// One canonical list shared by every front end (the `protest` CLI's
/// `<circuit>` arguments, the serve daemon's `submit {"builtin": …}`
/// requests, the load-generator workloads) so a name works everywhere or
/// nowhere.
pub const BUILTIN_NAMES: [&str; 7] = ["c17", "comp24", "alu", "mult", "mult6", "div8x8", "div16"];

/// Resolves a built-in circuit by name (see [`BUILTIN_NAMES`]; `alu`
/// accepts the long form `alu_74181` too), or a scalable-mesh spec string
/// like `multmesh:4x8x64` / `alumesh:16x48:uncoupled` (see
/// [`mesh_by_spec`]). Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<protest_netlist::Circuit> {
    match name {
        "c17" => Some(c17()),
        "comp24" => Some(comp24()),
        "alu" | "alu_74181" => Some(alu_74181()),
        "mult" => Some(mult_abcd()),
        "mult6" => Some(mult_array(6)),
        "div8x8" => Some(div_nonrestoring(8, 8)),
        "div16" => Some(div16()),
        spec => mesh_by_spec(spec),
    }
}

/// A family of growing array-multiplier circuits used as the size ladder for
/// the CPU-time experiments (paper Tables 7/8 use an unnamed ladder from
/// ~370 to ~48 000 transistors; `mult_array` widths 3, 6, 9, 16 and 26 land
/// in the same range under the CMOS cost model).
pub fn size_ladder() -> Vec<protest_netlist::Circuit> {
    [3usize, 6, 9, 16, 26]
        .iter()
        .map(|&w| mult_array(w))
        .collect()
}
