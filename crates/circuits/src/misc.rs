//! Small classic circuits used in tests, docs and examples.

use protest_netlist::{Circuit, CircuitBuilder};

/// The ISCAS-85 `c17` benchmark: 5 inputs, 2 outputs, 6 NAND gates.
pub fn c17() -> Circuit {
    let mut b = CircuitBuilder::new("c17");
    let g1 = b.input("G1");
    let g2 = b.input("G2");
    let g3 = b.input("G3");
    let g6 = b.input("G6");
    let g7 = b.input("G7");
    let g10 = b.nand2(g1, g3);
    let g11 = b.nand2(g3, g6);
    let g16 = b.nand2(g2, g11);
    let g19 = b.nand2(g11, g7);
    let g22 = b.nand2(g10, g16);
    let g23 = b.nand2(g16, g19);
    b.name(g10, "G10");
    b.name(g11, "G11");
    b.name(g16, "G16");
    b.name(g19, "G19");
    b.name(g22, "G22");
    b.name(g23, "G23");
    b.output(g22, "G22");
    b.output(g23, "G23");
    b.finish().expect("c17 construction is valid")
}

/// An `n`-input parity tree of XOR2 gates (output `z`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn parity_tree(n: usize) -> Circuit {
    assert!(n > 0, "parity tree needs at least one input");
    let mut b = CircuitBuilder::new(format!("parity{n}"));
    let xs = b.input_bus("x", n);
    let t = b.xor_tree(&xs);
    b.output(t, "z");
    b.finish().expect("parity tree construction is valid")
}

/// A `2^k : 1` multiplexer tree: `k` select inputs `s0..`, `2^k` data inputs
/// `d0..`, output `y`.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 16`.
pub fn mux_tree(k: usize) -> Circuit {
    assert!(k > 0 && k <= 16, "select width out of range");
    let mut b = CircuitBuilder::new(format!("mux{}", 1usize << k));
    let sel = b.input_bus("s", k);
    let data = b.input_bus("d", 1usize << k);
    let mut layer = data;
    for &s in &sel {
        let ns = b.not(s);
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            let a0 = b.and2(ns, pair[0]);
            let a1 = b.and2(s, pair[1]);
            next.push(b.or2(a0, a1));
        }
        layer = next;
    }
    b.output(layer[0], "y");
    b.finish().expect("mux tree construction is valid")
}

/// An `n`-to-`2^n` decoder: inputs `x0..`, outputs `y0..y{2^n-1}`,
/// `y_i = 1` iff the input equals `i`.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 16`.
pub fn decoder(n: usize) -> Circuit {
    assert!(n > 0 && n <= 16, "decoder width out of range");
    let mut b = CircuitBuilder::new(format!("dec{n}"));
    let xs = b.input_bus("x", n);
    let nxs: Vec<_> = xs.iter().map(|&x| b.not(x)).collect();
    for code in 0..(1usize << n) {
        let lits: Vec<_> = (0..n)
            .map(|i| if (code >> i) & 1 == 1 { xs[i] } else { nxs[i] })
            .collect();
        let y = b.and(&lits);
        b.output(y, format!("y{code}"));
    }
    b.finish().expect("decoder construction is valid")
}

#[cfg(test)]
mod tests {
    use protest_sim::LogicSim;

    use super::*;

    #[test]
    fn c17_shape() {
        let ckt = c17();
        assert_eq!(ckt.num_inputs(), 5);
        assert_eq!(ckt.num_outputs(), 2);
        assert_eq!(ckt.num_gates(), 6);
    }

    #[test]
    fn parity_is_parity() {
        let ckt = parity_tree(5);
        let mut sim = LogicSim::new(&ckt);
        for mask in 0..32u64 {
            let inputs: Vec<u64> = (0..5).map(|i| ((mask >> i) & 1) * !0u64).collect();
            let out = sim.run_block(&inputs);
            assert_eq!(out[0] & 1, (mask.count_ones() % 2) as u64);
        }
    }

    #[test]
    fn mux_selects() {
        let ckt = mux_tree(2);
        let mut sim = LogicSim::new(&ckt);
        for sel in 0..4u64 {
            for data in 0..16u64 {
                let mut inputs = Vec::new();
                for i in 0..2 {
                    inputs.push(((sel >> i) & 1) * !0u64);
                }
                for i in 0..4 {
                    inputs.push(((data >> i) & 1) * !0u64);
                }
                let out = sim.run_block(&inputs);
                assert_eq!(out[0] & 1, (data >> sel) & 1, "sel={sel} data={data:04b}");
            }
        }
    }

    #[test]
    fn decoder_one_hot() {
        let ckt = decoder(3);
        let mut sim = LogicSim::new(&ckt);
        for code in 0..8u64 {
            let inputs: Vec<u64> = (0..3).map(|i| ((code >> i) & 1) * !0u64).collect();
            let out = sim.run_block(&inputs);
            for (i, w) in out.iter().enumerate() {
                assert_eq!(w & 1 == 1, i as u64 == code);
            }
        }
    }
}
