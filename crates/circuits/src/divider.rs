//! "DIV": the combinational part of a 16-bit divider.
//!
//! A textbook restoring array divider: the dividend is fed in from the most
//! significant bit; each quotient row conditionally subtracts the divisor
//! from the running remainder (subtract via two's-complement addition, the
//! restore via a row of 2:1 muxes steered by the subtraction's carry-out).
//! The resulting carry/borrow chains stacked over all rows make some faults
//! extremely hard to excite with uniform random patterns — exactly the
//! random-pattern-resistant behaviour the paper reports for DIV (Table 3).

use protest_netlist::{Circuit, CircuitBuilder, NodeId};

use crate::adders::full_adder;

/// Builds a restoring array divider: `nd`-bit dividend, `nv`-bit divisor,
/// `nd` quotient bits and `nv` remainder bits (integer division; divisor
/// value 0 yields all-ones quotient, as the raw array does).
///
/// Inputs: `n0..n{nd-1}` (dividend, little-endian), `d0..d{nv-1}` (divisor).
/// Outputs: `q0..q{nd-1}`, `r0..r{nv-1}`.
///
/// # Panics
///
/// Panics if `nd == 0` or `nv == 0`.
pub fn div_array(nd: usize, nv: usize) -> Circuit {
    assert!(nd > 0 && nv > 0, "divider widths must be positive");
    let mut b = CircuitBuilder::new(format!("div{nd}by{nv}"));
    let n = b.input_bus("n", nd);
    let d = b.input_bus("d", nv);
    let nd_bits: Vec<NodeId> = d.iter().map(|&x| b.not(x)).collect();
    let zero = b.constant(false);
    let one = b.constant(true);

    // Remainder register (combinational), nv+1 bits to hold the shifted-in
    // dividend bit plus headroom; starts at 0.
    let mut rem: Vec<NodeId> = vec![zero; nv + 1];
    let mut quotient = vec![zero; nd];
    for row in (0..nd).rev() {
        // Shift left, bring in dividend bit `row`.
        let mut t: Vec<NodeId> = Vec::with_capacity(nv + 1);
        t.push(n[row]);
        t.extend_from_slice(&rem[..nv]);
        // t (nv+1 bits) minus divisor (zero-extended): t + ¬d + 1.
        let mut carry = one;
        let mut diff = Vec::with_capacity(nv + 1);
        for i in 0..=nv {
            let nd_i = if i < nv { nd_bits[i] } else { one };
            let (s, co) = full_adder(&mut b, t[i], nd_i, carry);
            diff.push(s);
            carry = co;
        }
        // carry == 1 ⇔ t ≥ d: quotient bit set, keep the difference;
        // else restore t.
        quotient[row] = carry;
        let nc = b.not_fold(carry);
        let mut next = Vec::with_capacity(nv + 1);
        for i in 0..=nv {
            // mux: carry ? diff : t (folded so zero-remainder boundary
            // cells vanish as in a hand-simplified array)
            let a1 = b.and2_fold(carry, diff[i]);
            let a0 = b.and2_fold(nc, t[i]);
            next.push(b.or2_fold(a1, a0));
        }
        rem = next;
    }
    for (i, q) in quotient.iter().enumerate() {
        b.output(*q, format!("q{i}"));
    }
    for (i, &r) in rem.iter().enumerate().take(nv) {
        b.output(r, format!("r{i}"));
    }
    b.finish().expect("divider construction is valid")
}

/// Builds a **non-restoring** array divider (Guild-style): `nd`-bit
/// dividend, `nv`-bit divisor, `nd` quotient bits plus the raw
/// (uncorrected, possibly negative) final accumulator as remainder bits.
///
/// Each row holds a controlled add/subtract: the divisor is XOR-masked by
/// the row's operation select (subtract when the running remainder is
/// non-negative) and fed through a ripple adder with matching carry-in.
/// Unlike the restoring array, every cell switches on every operand, so a
/// single weighted input distribution can excite the whole array — the
/// behaviour the paper's Table 6 relies on.
///
/// Inputs: `n0..`, `d0..`; outputs: `q0..q{nd-1}`, `r0..r{nv+1}`.
///
/// # Panics
///
/// Panics if `nd == 0` or `nv == 0`.
pub fn div_nonrestoring(nd: usize, nv: usize) -> Circuit {
    assert!(nd > 0 && nv > 0, "divider widths must be positive");
    let mut b = CircuitBuilder::new(format!("nrdiv{nd}by{nv}"));
    let n = b.input_bus("n", nd);
    let d = b.input_bus("d", nv);
    let zero = b.constant(false);
    let w = nv + 2; // two's-complement accumulator width

    let mut acc: Vec<NodeId> = vec![zero; w];
    let mut quotient = Vec::with_capacity(nd);
    for row in (0..nd).rev() {
        // Operation select: subtract when the accumulator (before shift)
        // is non-negative.
        let s_neg = acc[w - 1];
        let sub = b.not_fold(s_neg);
        // Shift left, insert dividend bit; old sign bit drops out.
        let mut t = Vec::with_capacity(w);
        t.push(n[row]);
        t.extend_from_slice(&acc[..w - 1]);
        // b_i = d_i ⊕ sub (divisor zero-extended, so high bits are `sub`).
        let mut carry = sub;
        let mut next = Vec::with_capacity(w);
        for i in 0..w {
            let bi = if i < nv { b.xor2_fold(d[i], sub) } else { sub };
            let (s, co) = full_adder(&mut b, t[i], bi, carry);
            next.push(s);
            carry = co;
        }
        // Quotient bit: result non-negative.
        quotient.push(b.not_fold(next[w - 1]));
        acc = next;
    }
    quotient.reverse(); // built MSB-first; store LSB-first
    for (i, q) in quotient.iter().enumerate() {
        b.output(*q, format!("q{i}"));
    }
    for (i, r) in acc.iter().enumerate() {
        b.output(*r, format!("r{i}"));
    }
    b.finish()
        .expect("non-restoring divider construction is valid")
}

/// Behavioral reference for [`div_nonrestoring`]: returns the quotient and
/// the raw final accumulator (low `nv + 2` bits, two's complement,
/// uncorrected). For `d ≥ 1` the quotient equals `n / d`.
pub fn div_nonrestoring_behavior(nd: usize, nv: usize, n: u64, d: u64) -> (u64, u64) {
    let w = nv + 2;
    let mask = (1u64 << w) - 1;
    let mut acc = 0u64;
    let mut q = 0u64;
    for k in (0..nd).rev() {
        let s_neg = (acc >> (w - 1)) & 1 == 1;
        acc = ((acc << 1) | ((n >> k) & 1)) & mask;
        let (bv, cin) = if s_neg {
            (d & mask, 0)
        } else {
            ((!d) & mask, 1)
        };
        acc = (acc + bv + cin) & mask;
        if (acc >> (w - 1)) & 1 == 0 {
            q |= 1 << k;
        }
    }
    (q, acc)
}

/// "DIV" as evaluated in the paper: the combinational part of a 16-bit
/// divider — a 16÷16 non-restoring array. The full-width divisor and the
/// 16 stacked carry chains give DIV its random-pattern-resistant fault
/// tail (paper Tables 3 and 6) while remaining testable under a single
/// optimized weight distribution.
pub fn div16() -> Circuit {
    div_nonrestoring(16, 16)
}

/// Behavioral reference for [`div_array`]: returns `(quotient, remainder)`.
/// Division by zero yields `(all-ones, dividend mod 2^nv truncated through
/// the array)`, matching the raw array's behaviour — callers in tests avoid
/// `d = 0` except for the dedicated zero test.
pub fn div_behavior(nd: usize, nv: usize, n: u64, d: u64) -> (u64, u64) {
    let n = n & ((1u64 << nd) - 1);
    let d = d & ((1u64 << nv) - 1);
    if d == 0 {
        // Every conditional subtract of 0 succeeds: q = all ones; the
        // remainder rows shift the dividend through unchanged, so the array
        // leaves the low divisor-width bits of the dividend.
        return ((1u64 << nd) - 1, n & ((1u64 << nv) - 1));
    }
    (n / d, n % d)
}

#[cfg(test)]
mod tests {
    use protest_sim::LogicSim;

    use super::*;

    fn run_div(sim: &mut LogicSim<'_>, nd: usize, nv: usize, n: u64, d: u64) -> (u64, u64) {
        let mut inputs = Vec::new();
        for i in 0..nd {
            inputs.push(((n >> i) & 1) * !0u64);
        }
        for i in 0..nv {
            inputs.push(((d >> i) & 1) * !0u64);
        }
        let out = sim.run_block(&inputs);
        let mut q = 0u64;
        #[allow(clippy::needless_range_loop)]
        for i in 0..nd {
            q |= (out[i] & 1) << i;
        }
        let mut r = 0u64;
        #[allow(clippy::needless_range_loop)]
        for i in 0..nv {
            r |= (out[nd + i] & 1) << i;
        }
        (q, r)
    }

    #[test]
    fn small_divider_exhaustive() {
        let ckt = div_array(4, 3);
        let mut sim = LogicSim::new(&ckt);
        for n in 0..16u64 {
            for d in 1..8u64 {
                let got = run_div(&mut sim, 4, 3, n, d);
                assert_eq!(got, (n / d, n % d), "{n}/{d}");
            }
        }
    }

    fn run_nr(sim: &mut LogicSim<'_>, nd: usize, nv: usize, n: u64, d: u64) -> (u64, u64) {
        let mut inputs = Vec::new();
        for i in 0..nd {
            inputs.push(((n >> i) & 1) * !0u64);
        }
        for i in 0..nv {
            inputs.push(((d >> i) & 1) * !0u64);
        }
        let out = sim.run_block(&inputs);
        let mut q = 0u64;
        #[allow(clippy::needless_range_loop)]
        for i in 0..nd {
            q |= (out[i] & 1) << i;
        }
        let mut r = 0u64;
        #[allow(clippy::needless_range_loop)]
        for i in 0..nv + 2 {
            r |= (out[nd + i] & 1) << i;
        }
        (q, r)
    }

    #[test]
    fn nonrestoring_small_exhaustive() {
        let ckt = div_nonrestoring(4, 3);
        let mut sim = LogicSim::new(&ckt);
        for n in 0..16u64 {
            for d in 0..8u64 {
                let got = run_nr(&mut sim, 4, 3, n, d);
                let want = div_nonrestoring_behavior(4, 3, n, d);
                assert_eq!(got, want, "{n}/{d}");
                if let Some(want) = n.checked_div(d) {
                    assert_eq!(got.0, want, "quotient {n}/{d}");
                }
            }
        }
    }

    #[test]
    fn div16_probe_values() {
        let ckt = div16();
        assert_eq!(ckt.num_inputs(), 32);
        assert_eq!(ckt.num_outputs(), 16 + 18);
        let mut sim = LogicSim::new(&ckt);
        let cases = [
            (65535u64, 255u64),
            (65535, 1),
            (0, 7),
            (40000, 123),
            (12345, 65535),
            (1, 255),
            (65280, 32768),
            (54321, 77),
        ];
        for (n, d) in cases {
            let got = run_nr(&mut sim, 16, 16, n, d);
            let want = div_nonrestoring_behavior(16, 16, n, d);
            assert_eq!(got, want, "{n}/{d}");
            assert_eq!(got.0, n / d, "quotient {n}/{d}");
        }
    }

    #[test]
    fn div_16_by_8_variant() {
        let ckt = div_array(16, 8);
        let mut sim = LogicSim::new(&ckt);
        for (n, d) in [(65535u64, 255u64), (40000, 123), (12345, 250)] {
            let got = run_div(&mut sim, 16, 8, n, d);
            assert_eq!(got, (n / d, n % d), "{n}/{d}");
        }
    }

    #[test]
    fn divide_by_zero_saturates_quotient() {
        let ckt = div_array(4, 3);
        let mut sim = LogicSim::new(&ckt);
        let (q, r) = run_div(&mut sim, 4, 3, 9, 0);
        assert_eq!(q, 15);
        assert_eq!(r, div_behavior(4, 3, 9, 0).1);
    }

    #[test]
    fn divider_is_deep() {
        // The stacked borrow chains should produce a logic depth far larger
        // than the multiplier's — that is what makes DIV random-resistant.
        let ckt = div16();
        let levels = protest_netlist::Levels::new(&ckt);
        assert!(levels.depth() > 60, "depth {} too shallow", levels.depth());
    }
}
