//! Magnitude comparators: the SN7485 4-bit slice and "COMP", the paper's
//! 24-bit word comparator cascaded from 16 slightly modified SN7485s
//! (paper Fig. 7).
//!
//! ## Reconstruction notes
//!
//! The paper's Fig. 7 is not legible enough to recover the exact wiring, but
//! its interface is: data inputs `A0..A23`, `B0..B23` and three cascade
//! inputs `TI1..TI3` (they appear in Table 4), one `>`/`=`/`<` result. We
//! realise it as a ripple cascade of 16 comparator slices from least to most
//! significant, eight 1-bit slices followed by eight 2-bit slices
//! (8·1 + 8·2 = 24 bit-pairs), each slice retaining the SN7485's internal
//! AOI structure. "Slightly modified" is interpreted as (a) truncating the
//! data width of a slice and (b) driving the `>`-term cascade with the
//! incoming `>` signal directly instead of `¬(I_< ∨ I_=)`, which is the
//! standard simplification for one-hot cascade signals. The testability
//! character — a 24-stage equality chain that a fault near the cascade
//! inputs must fully sensitize — is exactly the paper's.

use protest_netlist::{Circuit, CircuitBuilder, NodeId};

/// Comparison outcome of the behavioral models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareResult {
    /// `A > B`.
    Greater,
    /// `A = B` (the cascade inputs decide the final outputs).
    Equal,
    /// `A < B`.
    Less,
}

/// Cascade signal bundle: `(gt, eq, lt)`.
type Cascade = (NodeId, NodeId, NodeId);

/// Adds one comparator slice over `a`/`b` (little-endian, equal width ≥ 1);
/// returns the slice outputs.
///
/// This is the SN7485 gate structure generalized to any width: per-bit
/// equality via AND/NOR pairs, magnitude via AND-OR chains anchored at the
/// most significant differing bit, equality propagated to the cascade pins.
/// `cascade = None` builds the paper's "slightly modified" slice: the
/// cascade-input gates are omitted entirely (equivalent to tying
/// `(I>, I=, I<) = (0, 1, 0)` and simplifying), and the `=` output reduces
/// to the bare equality chain.
fn comparator_slice(
    b: &mut CircuitBuilder,
    a: &[NodeId],
    bv: &[NodeId],
    cascade: Option<Cascade>,
) -> Cascade {
    assert_eq!(a.len(), bv.len());
    assert!(!a.is_empty());
    let n = a.len();
    // Per-bit: gt_i = a·¬b, lt_i = ¬a·b, e_i = NOR(gt_i, lt_i).
    let mut gt_bit = Vec::with_capacity(n);
    let mut lt_bit = Vec::with_capacity(n);
    let mut eq_bit = Vec::with_capacity(n);
    for i in 0..n {
        let na = b.not(a[i]);
        let nb = b.not(bv[i]);
        let g = b.and2(a[i], nb);
        let l = b.and2(na, bv[i]);
        gt_bit.push(g);
        lt_bit.push(l);
        eq_bit.push(b.nor2(g, l));
    }
    // O_gt = OR over i of (e_{n-1}·…·e_{i+1}·gt_i)  ∨  (all-equal ∧ I_gt).
    let mut gt_terms = Vec::with_capacity(n + 1);
    let mut lt_terms = Vec::with_capacity(n + 1);
    for i in (0..n).rev() {
        let mut g_term = vec![gt_bit[i]];
        let mut l_term = vec![lt_bit[i]];
        g_term.extend_from_slice(&eq_bit[i + 1..]);
        l_term.extend_from_slice(&eq_bit[i + 1..]);
        gt_terms.push(if g_term.len() == 1 {
            g_term[0]
        } else {
            b.and(&g_term)
        });
        lt_terms.push(if l_term.len() == 1 {
            l_term[0]
        } else {
            b.and(&l_term)
        });
    }
    if let Some((i_gt, _, i_lt)) = cascade {
        let mut all_eq_gt = eq_bit.clone();
        all_eq_gt.push(i_gt);
        gt_terms.push(b.and(&all_eq_gt));
        let mut all_eq_lt = eq_bit.clone();
        all_eq_lt.push(i_lt);
        lt_terms.push(b.and(&all_eq_lt));
    }
    let o_gt = if gt_terms.len() == 1 {
        gt_terms[0]
    } else {
        b.or(&gt_terms)
    };
    let o_lt = if lt_terms.len() == 1 {
        lt_terms[0]
    } else {
        b.or(&lt_terms)
    };
    let mut all_eq = eq_bit;
    if let Some((_, i_eq, _)) = cascade {
        all_eq.push(i_eq);
    }
    let o_eq = if all_eq.len() == 1 {
        all_eq[0]
    } else {
        b.and(&all_eq)
    };
    (o_gt, o_eq, o_lt)
}

/// A standalone SN7485 4-bit magnitude comparator.
///
/// Inputs (11): `a0..a3, b0..b3, igt, ieq, ilt`; outputs: `ogt, oeq, olt`.
pub fn sn7485() -> Circuit {
    let mut b = CircuitBuilder::new("sn7485");
    let a = b.input_bus("a", 4);
    let bv = b.input_bus("b", 4);
    let igt = b.input("igt");
    let ieq = b.input("ieq");
    let ilt = b.input("ilt");
    let (ogt, oeq, olt) = comparator_slice(&mut b, &a, &bv, Some((igt, ieq, ilt)));
    b.output(ogt, "ogt");
    b.output(oeq, "oeq");
    b.output(olt, "olt");
    b.finish().expect("SN7485 construction is valid")
}

/// "COMP": the 24-bit cascaded word comparator of paper Fig. 7.
///
/// Inputs (51): `A0..A23, B0..B23, TI1, TI2, TI3` (cascade `>`, `=`, `<`
/// fed to the least-significant slice). Outputs: `OGT, OEQ, OLT`.
///
/// Built from **16** comparator slices in a ripple chain, least significant
/// first: slices 0–7 compare one bit-pair each (bits 0–7), slices 8–15 two
/// bit-pairs each (bits 8–23); "slightly modified" = truncated data width.
/// The chain makes faults near the cascade end spectacularly random-pattern
/// resistant (all 24 more-significant bit-pairs must compare equal), which
/// is the behaviour the paper's Table 3 documents.
pub fn comp24() -> Circuit {
    let mut b = CircuitBuilder::new("comp24");
    let a = b.input_bus("A", 24);
    let bv = b.input_bus("B", 24);
    let ti1 = b.input("TI1");
    let ti2 = b.input("TI2");
    let ti3 = b.input("TI3");
    let mut cascade: Cascade = (ti1, ti2, ti3);
    let mut bit = 0usize;
    for slice in 0..16 {
        let width = if slice < 8 { 1 } else { 2 };
        let sa = &a[bit..bit + width];
        let sb = &bv[bit..bit + width];
        cascade = comparator_slice(&mut b, sa, sb, Some(cascade));
        bit += width;
    }
    assert_eq!(bit, 24);
    let (ogt, oeq, olt) = cascade;
    b.output(ogt, "OGT");
    b.output(oeq, "OEQ");
    b.output(olt, "OLT");
    b.finish().expect("COMP construction is valid")
}

/// Behavioral reference for [`comp24`]: compares 24-bit words, falling back
/// to the cascade inputs on equality. Returns `(ogt, oeq, olt)`.
pub fn comp24_behavior(a: u32, b: u32, ti: (bool, bool, bool)) -> (bool, bool, bool) {
    let a = a & 0xFF_FFFF;
    let b = b & 0xFF_FFFF;
    match a.cmp(&b) {
        std::cmp::Ordering::Greater => (true, false, false),
        std::cmp::Ordering::Less => (false, false, true),
        std::cmp::Ordering::Equal => ti,
    }
}

#[cfg(test)]
mod tests {
    use protest_sim::LogicSim;

    use super::*;

    #[test]
    fn sn7485_matches_comparison_semantics() {
        let ckt = sn7485();
        assert_eq!(ckt.num_inputs(), 11);
        let mut sim = LogicSim::new(&ckt);
        for a in 0..16u64 {
            for b in 0..16u64 {
                for (ti, want_eq) in [
                    ((1u64, 0u64, 0u64), (true, false, false)),
                    ((0, 1, 0), (false, true, false)),
                    ((0, 0, 1), (false, false, true)),
                ] {
                    let mut inputs = Vec::new();
                    for i in 0..4 {
                        inputs.push(((a >> i) & 1) * !0u64);
                    }
                    for i in 0..4 {
                        inputs.push(((b >> i) & 1) * !0u64);
                    }
                    inputs.push(ti.0 * !0);
                    inputs.push(ti.1 * !0);
                    inputs.push(ti.2 * !0);
                    let out = sim.run_block(&inputs);
                    let got = (out[0] & 1 == 1, out[1] & 1 == 1, out[2] & 1 == 1);
                    let want = match a.cmp(&b) {
                        std::cmp::Ordering::Greater => (true, false, false),
                        std::cmp::Ordering::Less => (false, false, true),
                        std::cmp::Ordering::Equal => want_eq,
                    };
                    assert_eq!(got, want, "a={a} b={b} ti={ti:?}");
                }
            }
        }
    }

    #[test]
    fn comp24_matches_behavior_on_probe_values() {
        let ckt = comp24();
        assert_eq!(ckt.num_inputs(), 51);
        assert_eq!(ckt.num_outputs(), 3);
        let mut sim = LogicSim::new(&ckt);
        let probes: &[(u32, u32)] = &[
            (0, 0),
            (1, 0),
            (0, 1),
            (0xFF_FFFF, 0xFF_FFFF),
            (0xFF_FFFF, 0xFF_FFFE),
            (0x800000, 0x7FFFFF),
            (0x123456, 0x123457),
            (0xABCDEF, 0xABCDEF),
            (0x000100, 0x0000FF),
        ];
        for &(a, b) in probes {
            for ti in [
                (true, false, false),
                (false, true, false),
                (false, false, true),
            ] {
                let mut inputs = Vec::new();
                for i in 0..24 {
                    inputs.push((((a >> i) & 1) as u64) * !0);
                }
                for i in 0..24 {
                    inputs.push((((b >> i) & 1) as u64) * !0);
                }
                inputs.push(u64::from(ti.0) * !0);
                inputs.push(u64::from(ti.1) * !0);
                inputs.push(u64::from(ti.2) * !0);
                let out = sim.run_block(&inputs);
                let got = (out[0] & 1 == 1, out[1] & 1 == 1, out[2] & 1 == 1);
                assert_eq!(
                    got,
                    comp24_behavior(a, b, ti),
                    "a={a:#x} b={b:#x} ti={ti:?}"
                );
            }
        }
    }

    #[test]
    fn comp24_random_cross_check() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let ckt = comp24();
        let mut sim = LogicSim::new(&ckt);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let a: u32 = rng.gen::<u32>() & 0xFF_FFFF;
            // Bias toward near-equal words to exercise the equality chain.
            let b = if rng.gen_bool(0.5) {
                a ^ (1u32 << rng.gen_range(0..24u32))
            } else {
                rng.gen::<u32>() & 0xFF_FFFF
            };
            let ti = (false, true, false);
            let mut inputs = Vec::new();
            for i in 0..24 {
                inputs.push((((a >> i) & 1) as u64) * !0);
            }
            for i in 0..24 {
                inputs.push((((b >> i) & 1) as u64) * !0);
            }
            inputs.push(0);
            inputs.push(!0u64);
            inputs.push(0);
            let out = sim.run_block(&inputs);
            let got = (out[0] & 1 == 1, out[1] & 1 == 1, out[2] & 1 == 1);
            assert_eq!(got, comp24_behavior(a, b, ti), "a={a:#x} b={b:#x}");
        }
    }
}
