//! Robustness: hostile or broken input must produce typed error replies,
//! never a dead daemon; shutdown must drain gracefully.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use protest_serve::{serve, Json, ServeConfig, ServerHandle};

fn connect(handle: &ServerHandle) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn roundtrip(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Json {
    writer.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    Json::parse(&reply).unwrap()
}

fn error_kind(reply: &Json) -> String {
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    reply
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap()
        .to_string()
}

#[test]
fn hostile_input_gets_typed_errors_and_daemon_stays_up() {
    let handle = serve(ServeConfig {
        max_line_bytes: 2048,
        ..ServeConfig::default()
    })
    .unwrap();
    let (mut writer, mut reader) = connect(&handle);

    // Garbage that is not JSON.
    let r = roundtrip(&mut writer, &mut reader, "\u{1}\u{2}garbage!!");
    assert_eq!(error_kind(&r), "parse");

    // Valid JSON, invalid envelope — id still echoed for correlation.
    let r = roundtrip(&mut writer, &mut reader, r#"{"id":7,"op":"explode"}"#);
    assert_eq!(error_kind(&r), "protocol");
    assert_eq!(r.get("id").and_then(Json::as_u64), Some(7));

    // Deeply nested JSON (a depth bomb) is rejected, not recursed into.
    let bomb = format!("{}{}", "[".repeat(500), "]".repeat(500));
    let r = roundtrip(&mut writer, &mut reader, &bomb);
    assert_eq!(error_kind(&r), "parse");

    // A netlist that does not parse.
    let r = roundtrip(
        &mut writer,
        &mut reader,
        r#"{"op":"submit","text":"INPUT(\nbroken"}"#,
    );
    assert_eq!(error_kind(&r), "netlist");

    // Unknown circuit hash.
    let r = roundtrip(
        &mut writer,
        &mut reader,
        r#"{"op":"analyze","circuit":"feedbeef"}"#,
    );
    assert_eq!(error_kind(&r), "not_found");

    // An oversized line: discarded to the newline, typed reply, and the
    // framing resynchronizes.
    let huge = format!(r#"{{"op":"submit","text":"{}"}}"#, "z".repeat(100_000));
    let r = roundtrip(&mut writer, &mut reader, &huge);
    assert_eq!(error_kind(&r), "oversized");

    // Same connection still serves real work afterwards.
    let r = roundtrip(
        &mut writer,
        &mut reader,
        r#"{"id":9,"op":"submit","builtin":"c17"}"#,
    );
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));

    // And so does a fresh connection.
    let (mut w2, mut r2) = connect(&handle);
    let r = roundtrip(
        &mut w2,
        &mut r2,
        r#"{"op":"analyze","circuit":"builtin:c17"}"#,
    );
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));

    handle.shutdown();
}

#[test]
fn abrupt_disconnects_do_not_wedge_the_daemon() {
    let handle = serve(ServeConfig::default()).unwrap();

    // Half-written request, then vanish.
    {
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"{\"op\":\"anal").unwrap();
    }
    // Connect and say nothing.
    {
        let _s = TcpStream::connect(handle.addr()).unwrap();
    }

    let (mut writer, mut reader) = connect(&handle);
    let r = roundtrip(
        &mut writer,
        &mut reader,
        r#"{"op":"submit","builtin":"c17"}"#,
    );
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
    handle.shutdown();
}

#[test]
fn shutdown_drains_in_flight_work_and_stops_accepting() {
    let handle = serve(ServeConfig::default()).unwrap();
    let addr = handle.addr();

    let (mut writer, mut reader) = connect(&handle);
    roundtrip(
        &mut writer,
        &mut reader,
        r#"{"op":"submit","builtin":"comp24"}"#,
    );

    // Pipeline several requests and the shutdown in one burst: everything
    // written before the shutdown must still be answered, in order.
    let mut burst = String::new();
    for i in 0..3 {
        burst.push_str(&format!(
            "{{\"id\":{i},\"op\":\"analyze\",\"circuit\":\"builtin:comp24\",\"prob\":0.{},\"detect_probs\":false}}\n",
            3 + i
        ));
    }
    burst.push_str("{\"id\":99,\"op\":\"shutdown\"}\n");
    writer.write_all(burst.as_bytes()).unwrap();

    for i in 0..3 {
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let parsed = Json::parse(&reply).unwrap();
        assert_eq!(parsed.get("id").and_then(Json::as_u64), Some(i));
        assert_eq!(
            parsed.get("ok").and_then(Json::as_bool),
            Some(true),
            "pipelined request {i} must be answered before the drain: {}",
            reply.trim()
        );
    }
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"draining\":true"), "{reply}");

    // Drain completes even with this client still connected.
    handle.wait();

    // After the drain the listener is gone: either the connection is
    // refused outright, or nothing ever answers.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_millis(300)))
                .unwrap();
            s.write_all(b"{\"op\":\"stats\"}\n").unwrap();
            let mut buf = [0u8; 1];
            match s.read(&mut buf) {
                Ok(0) => {}
                Ok(_) => panic!("drained server still answered a request"),
                Err(_) => {}
            }
        }
    }
}

#[test]
fn full_queue_sheds_load_with_busy() {
    // One worker, queue capacity 1: the third concurrent request must be
    // shed with `busy` while the first still runs.
    let handle = serve(ServeConfig {
        workers_per_circuit: 1,
        queue_capacity: 1,
        handlers: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let (mut writer, mut reader) = connect(&handle);
    roundtrip(
        &mut writer,
        &mut reader,
        r#"{"op":"submit","builtin":"mult6"}"#,
    );

    // Saturate: several clients fire a slow optimize each, concurrently.
    let outcomes: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let handle = &handle;
                scope.spawn(move || {
                    let (mut w, mut r) = connect(handle);
                    let reply = roundtrip(
                        &mut w,
                        &mut r,
                        r#"{"op":"optimize","circuit":"builtin:mult6","n_target":2000}"#,
                    );
                    match reply.get("ok").and_then(Json::as_bool) {
                        Some(true) => "ok".to_string(),
                        _ => error_kind(&reply),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // With 1 worker and queue depth 1, at least one of four concurrent
    // slow requests must have been shed; shed replies are typed `busy`.
    assert!(
        outcomes.iter().any(|o| o == "busy"),
        "expected at least one busy rejection, got {outcomes:?}"
    );
    assert!(
        outcomes.iter().any(|o| o == "ok"),
        "expected at least one success, got {outcomes:?}"
    );
    handle.shutdown();
}
