//! Chaos suite: fault injection through `protest_core::failpoints`
//! proves the daemon's robustness contract — **no request ever goes
//! unanswered**, injected worker panics become typed `internal` replies,
//! deadline-exceeded requests actually stop computing, crashed circuit
//! hosts are respawned by the supervisor, and results that survive the
//! chaos stay bit-identical to a calm run.
//!
//! Failpoints are process-global, so every test here serializes on one
//! mutex and resets the table when it is done.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use protest_core::failpoints;
use protest_serve::{serve, Json, ServeConfig, ServerHandle};

/// Serializes the tests in this file: failpoint configuration is
/// process-global state.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn connect(handle: &ServerHandle) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn roundtrip(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Json {
    writer.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(!reply.is_empty(), "request must never go unanswered");
    Json::parse(&reply).unwrap()
}

fn error_kind(reply: &Json) -> Option<String> {
    if reply.get("ok").and_then(Json::as_bool) == Some(false) {
        reply
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .map(str::to_string)
    } else {
        None
    }
}

fn robustness_counter(stats: &Json, key: &str) -> u64 {
    stats
        .get("result")
        .and_then(|r| r.get("robustness"))
        .and_then(|r| r.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing robustness.{key}"))
}

const ANALYZE: &str = r#"{"id":1,"op":"analyze","circuit":"builtin:c17","prob":0.5}"#;

#[test]
fn injected_worker_panics_become_internal_errors_and_daemon_survives() {
    let _guard = chaos_lock();
    failpoints::configure("serve.worker.panic=1in5");
    let handle = serve(ServeConfig::default()).unwrap();
    let (mut w, mut r) = connect(&handle);
    let reply = roundtrip(&mut w, &mut r, r#"{"op":"submit","builtin":"c17"}"#);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    let mut ok_lines = Vec::new();
    let mut internals = 0u32;
    for _ in 0..30 {
        let reply = roundtrip(&mut w, &mut r, ANALYZE);
        match error_kind(&reply) {
            None => ok_lines.push(reply.get("result").unwrap().to_line()),
            Some(kind) => {
                assert_eq!(kind, "internal", "only the injected panic may fail");
                internals += 1;
            }
        }
    }
    assert!(
        internals >= 1,
        "1in5 over 30 requests must panic at least once"
    );
    assert!(!ok_lines.is_empty(), "most requests must still succeed");
    // Survivors are bit-identical to each other and to a calm run.
    failpoints::reset();
    let calm = roundtrip(&mut w, &mut r, ANALYZE);
    let calm_line = calm.get("result").unwrap().to_line();
    for line in &ok_lines {
        assert_eq!(*line, calm_line, "chaos must never change surviving bits");
    }

    let stats = roundtrip(&mut w, &mut r, r#"{"op":"stats"}"#);
    assert!(robustness_counter(&stats, "worker_panics") >= 1);
    assert!(
        robustness_counter(&stats, "sessions_discarded") >= 1,
        "a panicking worker's session must be discarded, not re-pooled"
    );
    handle.shutdown();
}

#[test]
fn deadline_exceeded_requests_stop_computing() {
    let _guard = chaos_lock();
    // Every propagate sleeps 100 ms; the request deadline is 50 ms, so
    // the reply is a timeout AND the in-flight analysis must abort at
    // its next poll point instead of running to completion.
    failpoints::configure("core.propagate.delay=100ms");
    let handle = serve(ServeConfig {
        request_timeout: Duration::from_millis(50),
        ..ServeConfig::default()
    })
    .unwrap();
    let (mut w, mut r) = connect(&handle);
    let reply = roundtrip(&mut w, &mut r, r#"{"op":"submit","builtin":"c17"}"#);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    // A probability different from the pool's base vector, so the dirty
    // worklist actually propagates (that loop hosts the delay site).
    let reply = roundtrip(
        &mut w,
        &mut r,
        r#"{"op":"analyze","circuit":"builtin:c17","prob":0.3}"#,
    );
    assert_eq!(error_kind(&reply).as_deref(), Some("timeout"));

    // The worker notices the fired token shortly after; poll stats until
    // the cancellation is visible as *stopped work*.
    failpoints::reset();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = roundtrip(&mut w, &mut r, r#"{"op":"stats"}"#);
        if robustness_counter(&stats, "cancelled_work") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "cancelled_work never incremented: the timeout did not stop the computation"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The pool quarantined whatever the cancel poisoned; service continues.
    let reply = roundtrip(&mut w, &mut r, ANALYZE);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    handle.shutdown();
}

#[test]
fn crashed_host_is_respawned_by_the_supervisor() {
    let _guard = chaos_lock();
    failpoints::configure("serve.host.exit=once");
    let handle = serve(ServeConfig {
        request_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    })
    .unwrap();
    let (mut w, mut r) = connect(&handle);
    let reply = roundtrip(&mut w, &mut r, r#"{"op":"submit","builtin":"c17"}"#);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    // The first dispatched job trips the failpoint: the whole host dies
    // mid-job, the job's reply channel is dropped, and the client gets
    // an immediate typed `internal` — not a timeout blamed on the clock.
    let reply = roundtrip(&mut w, &mut r, ANALYZE);
    assert_eq!(error_kind(&reply).as_deref(), Some("internal"));

    // The supervisor must respawn the host and service must recover —
    // with no re-submit from the client.
    failpoints::reset();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let reply = roundtrip(&mut w, &mut r, ANALYZE);
        if error_kind(&reply).is_none() {
            break;
        }
        assert!(Instant::now() < deadline, "host never recovered: {reply:?}");
        std::thread::sleep(Duration::from_millis(50));
    }
    let stats = roundtrip(&mut w, &mut r, r#"{"op":"stats"}"#);
    assert!(robustness_counter(&stats, "host_restarts") >= 1);
    handle.shutdown();
}

#[test]
fn capacity_cap_evicts_the_least_recently_used_idle_host() {
    let _guard = chaos_lock();
    failpoints::reset();
    let handle = serve(ServeConfig {
        max_circuits: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let (mut w, mut r) = connect(&handle);

    let reply = roundtrip(&mut w, &mut r, r#"{"op":"submit","builtin":"c17"}"#);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    // Touch c17 so its LRU stamp is its dispatch time …
    let reply = roundtrip(&mut w, &mut r, ANALYZE);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    // … then register comp24, making c17 the least recently used. The
    // sleep keeps the two millisecond-resolution LRU stamps distinct.
    let reply = roundtrip(&mut w, &mut r, r#"{"op":"submit","builtin":"comp24"}"#);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    std::thread::sleep(Duration::from_millis(10));
    let reply = roundtrip(
        &mut w,
        &mut r,
        r#"{"op":"analyze","circuit":"builtin:comp24","detect_probs":false}"#,
    );
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    // A third circuit must evict c17 (idle + least recently used).
    let reply = roundtrip(
        &mut w,
        &mut r,
        r#"{"op":"submit","text":"INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n"}"#,
    );
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    let reply = roundtrip(&mut w, &mut r, ANALYZE);
    assert_eq!(
        error_kind(&reply).as_deref(),
        Some("not_found"),
        "the evicted circuit must answer with a typed not_found"
    );
    // The survivor keeps serving.
    let reply = roundtrip(
        &mut w,
        &mut r,
        r#"{"op":"analyze","circuit":"builtin:comp24","detect_probs":false}"#,
    );
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    let stats = roundtrip(&mut w, &mut r, r#"{"op":"stats"}"#);
    assert!(robustness_counter(&stats, "evictions") >= 1);
    handle.shutdown();
}

#[test]
fn no_request_goes_unanswered_under_mixed_chaos() {
    let _guard = chaos_lock();
    failpoints::configure("serve.worker.panic=1in7,serve.worker.delay=1ms");
    let handle = serve(ServeConfig::default()).unwrap();
    {
        let (mut w, mut r) = connect(&handle);
        let reply = roundtrip(&mut w, &mut r, r#"{"op":"submit","builtin":"c17"}"#);
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    }

    // Four clients, mixed well-formed and hostile traffic, all
    // concurrent. Every line written must come back answered.
    let ok_lines: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|client| {
                let handle = &handle;
                scope.spawn(move || {
                    let (mut w, mut r) = connect(handle);
                    let mut survivors = Vec::new();
                    for i in 0..12 {
                        let reply = match (client + i) % 3 {
                            0 => roundtrip(&mut w, &mut r, ANALYZE),
                            1 => roundtrip(&mut w, &mut r, "{broken json"),
                            _ => roundtrip(&mut w, &mut r, r#"{"op":"analyze","circuit":"nope"}"#),
                        };
                        match error_kind(&reply) {
                            None => survivors.push(reply.get("result").unwrap().to_line()),
                            Some(kind) => assert!(
                                ["internal", "parse", "not_found", "busy"].contains(&kind.as_str()),
                                "unexpected failure kind {kind}"
                            ),
                        }
                    }
                    survivors
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    failpoints::reset();
    let (mut w, mut r) = connect(&handle);
    let calm = roundtrip(&mut w, &mut r, ANALYZE);
    let calm_line = calm.get("result").unwrap().to_line();
    for line in &ok_lines {
        assert_eq!(
            *line, calm_line,
            "surviving results must stay bit-identical"
        );
    }
    handle.shutdown();
}
