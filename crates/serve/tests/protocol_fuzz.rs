//! Protocol fuzzer: random byte-level mutations of valid request lines
//! are thrown at the JSON reader over a real TCP connection. The daemon
//! must never panic, must answer every non-empty line with valid JSON,
//! and must resynchronize on the next newline — a well-formed request
//! sent right after the garbage always succeeds.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;

use proptest::prelude::*;
use protest_serve::{serve, Json, ServeConfig, ServerHandle};

/// One shared daemon for every fuzz case; never shut down (process exit
/// reaps it). A tight `max_circuits` doubles as eviction dogfood when a
/// mutation happens to form a valid submit.
fn server() -> &'static ServerHandle {
    static SERVER: OnceLock<ServerHandle> = OnceLock::new();
    SERVER.get_or_init(|| {
        let handle = serve(ServeConfig {
            max_circuits: 8,
            max_line_bytes: 64 << 10,
            ..ServeConfig::default()
        })
        .unwrap();
        let (mut w, mut r) = connect(&handle);
        let reply = roundtrip(&mut w, &mut r, b"{\"op\":\"submit\",\"builtin\":\"c17\"}");
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        handle
    })
}

fn connect(handle: &ServerHandle) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn roundtrip(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &[u8]) -> Json {
    writer.write_all(line).unwrap();
    writer.write_all(b"\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(!reply.is_empty(), "daemon stopped answering");
    Json::parse(&reply).unwrap_or_else(|e| panic!("reply is not valid JSON ({e}): {reply:?}"))
}

const BASES: [&[u8]; 4] = [
    br#"{"id":1,"op":"analyze","circuit":"builtin:c17","prob":0.5,"testlen":[[1.0,0.95]]}"#,
    br#"{"id":2,"op":"submit","format":"bench","text":"INPUT(a)\nOUTPUT(z)\nz = BUF(a)\n"}"#,
    br#"{"id":3,"op":"batch","circuit":"builtin:c17","requests":[{"op":"analyze"},{"op":"check"}]}"#,
    br#"{"id":4,"op":"stats"}"#,
];

/// xorshift64* — deterministic per-case mutation stream.
fn next(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    state.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// See the module docs: never a panic, never an unanswered line,
    /// always resynchronized by the next newline.
    #[test]
    fn mutated_lines_never_kill_the_reader(seed in 1u64..1_000_000, base in 0usize..4) {
        let mut rng = seed;
        let mut line = BASES[base].to_vec();
        let edits = 1 + (next(&mut rng) % 8) as usize;
        for _ in 0..edits {
            let pos = (next(&mut rng) as usize) % line.len().max(1);
            match next(&mut rng) % 3 {
                0 => {
                    // Replace with an arbitrary non-newline byte.
                    let b = (next(&mut rng) % 256) as u8;
                    line[pos] = if b == b'\n' { b'\r' } else { b };
                }
                1 => {
                    let b = (next(&mut rng) % 256) as u8;
                    line.insert(pos, if b == b'\n' { b'{' } else { b });
                }
                _ => {
                    if line.len() > 1 {
                        line.remove(pos);
                    }
                }
            }
        }

        let handle = server();
        let (mut w, mut r) = connect(handle);
        // Empty (after trim) lines are skipped by the framer — no reply
        // to wait for; anything else must be answered with valid JSON.
        let text = String::from_utf8_lossy(&line);
        if !text.trim().is_empty() {
            let reply = roundtrip(&mut w, &mut r, &line);
            prop_assert!(reply.get("ok").is_some(), "reply lacks ok: {reply:?}");
        } else {
            w.write_all(&line).unwrap();
            w.write_all(b"\n").unwrap();
        }
        // Resynchronization: a well-formed request right behind the
        // garbage gets a well-formed success.
        let reply = roundtrip(
            &mut w,
            &mut r,
            br#"{"id":9,"op":"analyze","circuit":"builtin:c17","detect_probs":false}"#,
        );
        prop_assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        prop_assert_eq!(reply.get("id").and_then(Json::as_u64), Some(9));
    }
}
