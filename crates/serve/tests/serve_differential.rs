//! Differential tests: every value the daemon serves must be
//! bit-identical to the direct library API.
//!
//! The wire format uses Rust's shortest-roundtrip float printing, so a
//! served `f64` must survive serialize → parse with `to_bits` equality —
//! the daemon adds caching and transport, never approximation. These
//! tests drive N concurrent clients through real TCP connections and
//! compare against fresh `Analyzer`/`AnalysisSession` runs.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use protest_core::optimize::{HillClimber, OptimizeParams};
use protest_core::{check, Analyzer, CheckParams, InputProbs};
use protest_netlist::parse_bench;
use protest_serve::{serve, Json, ServeConfig, ServerHandle};

const C17: &str = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(z1)\nOUTPUT(z2)\n\
                   g1 = NAND(a, c)\ng2 = NAND(c, d)\ng3 = NAND(b, g2)\ng4 = NAND(g2, e)\n\
                   z1 = NAND(g1, g3)\nz2 = NAND(g3, g4)\n";

fn connect(handle: &ServerHandle) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn request(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Json {
    writer.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let parsed = Json::parse(&reply).unwrap();
    assert_eq!(
        parsed.get("ok").and_then(Json::as_bool),
        Some(true),
        "request `{line}` failed: {}",
        reply.trim()
    );
    parsed.get("result").cloned().unwrap()
}

fn floats(v: &Json, key: &str) -> Vec<f64> {
    v.get(key)
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("missing array `{key}` in {}", v.to_line()))
        .iter()
        .map(|x| x.as_f64().unwrap())
        .collect()
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn submit_text(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, text: &str) -> String {
    let line = format!(
        "{{\"op\":\"submit\",\"text\":{}}}",
        Json::str(text).to_line()
    );
    request(writer, reader, &line)
        .get("circuit")
        .and_then(Json::as_str)
        .unwrap()
        .to_string()
}

#[test]
fn concurrent_analyze_matches_direct_api_bit_for_bit() {
    let handle = serve(ServeConfig::default()).unwrap();

    // Direct reference: fresh session per probability point.
    let circuit = parse_bench("circuit", C17).unwrap();
    let analyzer = Analyzer::new(&circuit);
    let probe_points: Vec<f64> = vec![0.2, 0.35, 0.5, 0.65, 0.8];
    let reference: Vec<(Vec<u64>, Vec<u64>)> = probe_points
        .iter()
        .map(|&p| {
            let probs = InputProbs::constant(circuit.num_inputs(), p).unwrap();
            let mut session = analyzer.session(&probs).unwrap();
            (
                bits(session.signal_probs()),
                bits(session.fault_detect_probs()),
            )
        })
        .collect();

    // Six clients hammer the daemon concurrently, each sweeping all five
    // points in a different order (c rotates the start index).
    std::thread::scope(|scope| {
        for c in 0..6usize {
            let probe_points = &probe_points;
            let reference = &reference;
            let handle = &handle;
            scope.spawn(move || {
                let (mut writer, mut reader) = connect(handle);
                let hash = submit_text(&mut writer, &mut reader, C17);
                for k in 0..probe_points.len() {
                    let i = (k + c) % probe_points.len();
                    let result = request(
                        &mut writer,
                        &mut reader,
                        &format!(
                            "{{\"op\":\"analyze\",\"circuit\":\"{hash}\",\"prob\":{},\"signal_probs\":true}}",
                            probe_points[i]
                        ),
                    );
                    assert_eq!(
                        bits(&floats(&result, "signal_probs")),
                        reference[i].0,
                        "signal probs must be bit-identical (client {c}, p={})",
                        probe_points[i]
                    );
                    assert_eq!(
                        bits(&floats(&result, "detect_probs")),
                        reference[i].1,
                        "detect probs must be bit-identical (client {c}, p={})",
                        probe_points[i]
                    );
                }
            });
        }
    });

    // All six clients submitted the same text: one miss, five hits.
    let (mut writer, mut reader) = connect(&handle);
    let stats = request(&mut writer, &mut reader, "{\"op\":\"stats\"}");
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(5));
    handle.shutdown();
}

#[test]
fn served_check_report_matches_direct_check() {
    let handle = serve(ServeConfig::default()).unwrap();
    let (mut writer, mut reader) = connect(&handle);
    let hash = submit_text(&mut writer, &mut reader, C17);
    let served = request(
        &mut writer,
        &mut reader,
        &format!("{{\"op\":\"check\",\"circuit\":\"{hash}\",\"prove_redundant\":true}}"),
    );

    let circuit = parse_bench("circuit", C17).unwrap();
    let params = CheckParams {
        prove_redundant: true,
        ..CheckParams::default()
    };
    let direct = check(&circuit, &params);
    // Same canonical form on both sides: parse the pretty-printed report
    // through the wire JSON reader and compare compact serializations.
    let direct_compact = Json::parse(&direct.to_json()).unwrap().to_line();
    assert_eq!(served.to_line(), direct_compact);
    handle.shutdown();
}

#[test]
fn served_optimize_matches_direct_hill_climber() {
    let handle = serve(ServeConfig::default()).unwrap();
    let (mut writer, mut reader) = connect(&handle);
    let hash = submit_text(&mut writer, &mut reader, C17);
    let served = request(
        &mut writer,
        &mut reader,
        &format!("{{\"op\":\"optimize\",\"circuit\":\"{hash}\",\"n_target\":500,\"seed\":3}}"),
    );

    let circuit = parse_bench("circuit", C17).unwrap();
    let analyzer = Analyzer::new(&circuit);
    let params = OptimizeParams {
        n_target: 500,
        seed: 3,
        ..OptimizeParams::default()
    };
    let direct = HillClimber::new(&analyzer, params).optimize().unwrap();
    assert_eq!(
        bits(&floats(&served, "probs")),
        bits(direct.probs.as_slice()),
        "optimized probabilities must be bit-identical"
    );
    assert_eq!(
        served.get("rounds").and_then(Json::as_u64),
        Some(direct.rounds as u64)
    );
    assert_eq!(
        served.get("evaluations").and_then(Json::as_u64),
        Some(direct.evaluations as u64)
    );
    handle.shutdown();
}

#[test]
fn batch_replies_match_singles() {
    let handle = serve(ServeConfig::default()).unwrap();
    let (mut writer, mut reader) = connect(&handle);
    let hash = submit_text(&mut writer, &mut reader, C17);

    let single_a = request(
        &mut writer,
        &mut reader,
        &format!("{{\"op\":\"analyze\",\"circuit\":\"{hash}\",\"prob\":0.3}}"),
    );
    let single_b = request(
        &mut writer,
        &mut reader,
        &format!("{{\"op\":\"analyze\",\"circuit\":\"{hash}\",\"prob\":0.7}}"),
    );
    let batch = request(
        &mut writer,
        &mut reader,
        &format!(
            "{{\"op\":\"batch\",\"circuit\":\"{hash}\",\"requests\":[{{\"op\":\"analyze\",\"prob\":0.3}},{{\"op\":\"analyze\",\"prob\":0.7}}]}}"
        ),
    );
    let results = batch.get("results").and_then(Json::as_arr).unwrap();
    assert_eq!(results.len(), 2);
    for (entry, single) in results.iter().zip([&single_a, &single_b]) {
        assert_eq!(entry.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            entry.get("result").unwrap().to_line(),
            single.to_line(),
            "batched op must serve the same bits as the single request"
        );
    }
    handle.shutdown();
}
