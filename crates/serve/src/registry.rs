//! The content-hash circuit registry and per-circuit host threads.
//!
//! [`Analyzer`] borrows its `Circuit` (`#![forbid(unsafe_code)]` rules out
//! a self-referential owning cell), so warm state cannot live in a plain
//! map. Instead each registered circuit gets a **host thread** that owns
//! the `Circuit`, builds the `Analyzer` and a [`SessionPool`] on its own
//! stack, and runs a [`std::thread::scope`] of workers that share both by
//! reference. Handler threads talk to the host through a bounded job
//! queue: [`try_push`](crate::queue::Bounded::try_push) gives backpressure
//! (full queue → typed `busy` reply, never unbounded buffering) and a
//! `sync_channel` carries the reply back with a per-request timeout.
//!
//! The registry key is a content hash computed over the *raw netlist
//! text* (before parsing), so resubmitting an already-known netlist never
//! parses, never builds, and shares the one warm `Analyzer` with every
//! other client — the cache-hit fast path the whole daemon is built
//! around. Built-ins are keyed `builtin:<name>`.
//!
//! # Robustness
//!
//! Three failure paths are handled explicitly so no request ever goes
//! unanswered:
//!
//! * **Deadlines stop work.** Every dispatched job carries a
//!   [`CancelToken`] armed with the request deadline; when the client-side
//!   wait gives up, the token is cancelled and the in-flight analysis
//!   aborts cooperatively at its next poll point (`cancelled_work`
//!   metric). Disabling [`cancel_on_timeout`](Registry::new) reverts to
//!   the old fire-and-forget timeout for A/B measurement.
//! * **Worker panics are contained.** Each job runs under
//!   [`catch_unwind`]; a panic yields a typed `internal` error reply, the
//!   panicking worker's session is discarded instead of returned to the
//!   pool, and the worker keeps serving (`worker_panics` metric).
//! * **Dead hosts are restarted.** A supervisor pass
//!   ([`Registry::supervise`]) respawns the host thread of any circuit
//!   whose thread exited while its queue is still open; queued jobs
//!   survive the restart (`host_restarts` metric).
//!
//! A capacity cap (`max_circuits`) bounds resident warm state: inserting
//! past the cap evicts the least-recently-used *idle* host (empty queue,
//! no op in flight) after a graceful drain; later lookups of the evicted
//! hash get a typed `not_found` (`evictions` metric).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use protest_core::{failpoints, Analyzer, CancelToken, InputProbs, PoolStats, SessionPool};
use protest_netlist::{parse_bench, parse_pdl, Circuit};

use crate::json::Json;
use crate::metrics::Metrics;
use crate::ops::run_op;
use crate::protocol::{CircuitOp, ErrorKind, WireError};
use crate::queue::{Bounded, Popped, PushError};

/// Per-op results of one job, in request order.
type JobReply = Vec<Result<Json, WireError>>;

/// Phase timing of one executed job, in microseconds: how long it sat
/// in the circuit's queue, how long the session checkout took, and how
/// long the ops ran. Fed into the per-endpoint phase histograms and —
/// when the request set the `timing` flag — echoed in the reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobTiming {
    /// Enqueue → worker pop.
    pub queue_wait_us: u64,
    /// Session-pool checkout (warm hit or cold clone).
    pub checkout_us: u64,
    /// Executing the job's ops against the session.
    pub compute_us: u64,
}

impl JobTiming {
    /// The wire form of the opt-in reply `timing` object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("queue_wait_us", Json::Num(self.queue_wait_us as f64)),
            ("checkout_us", Json::Num(self.checkout_us as f64)),
            ("compute_us", Json::Num(self.compute_us as f64)),
        ])
    }
}

/// What one dispatched job produced: per-op results plus phase timing.
#[derive(Debug)]
pub struct JobOutcome {
    /// Per-op results, in request order.
    pub results: JobReply,
    /// Where the job's wall-clock went.
    pub timing: JobTiming,
}

/// How long an idle worker waits on the queue before re-checking the
/// host-wide dead flag. Bounds both crash detection and eviction-join
/// latency.
const WORKER_TICK: Duration = Duration::from_millis(50);

struct Job {
    ops: Vec<CircuitOp>,
    reply: SyncSender<JobOutcome>,
    /// The request's deadline token; armed by `dispatch`, honored by
    /// every poll point the ops reach.
    cancel: CancelToken,
    /// Telemetry clock at enqueue — the queue-wait phase starts here.
    enqueued_ns: u64,
}

/// One registered circuit: identity + the channel to its host thread.
pub struct Entry {
    /// The registry key (content hash or `builtin:<name>`).
    pub hash: String,
    /// The circuit's declared name.
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Gate count.
    pub gates: usize,
    jobs: Arc<Bounded<Job>>,
    pool_stats: Arc<Mutex<PoolStats>>,
    host: Mutex<Option<JoinHandle<()>>>,
    /// A pristine copy of the circuit, kept so the supervisor can respawn
    /// the host after a crash (the running host owns its own copy).
    circuit: Circuit,
    /// Jobs currently being executed by this host's workers.
    active: Arc<AtomicU64>,
    /// Cooperative kill switch shared by the host's workers; also set by
    /// the `serve.host.exit` failpoint to simulate a host crash.
    dead: Arc<AtomicBool>,
    /// Milliseconds since the registry epoch at the last dispatch —
    /// the LRU clock for capacity eviction.
    last_used: AtomicU64,
}

/// What `submit` learned: the entry plus whether it was already cached.
pub struct SubmitOutcome {
    /// The registered entry.
    pub entry: Arc<Entry>,
    /// `true` when the hash was already registered (no parse, no build).
    pub cached: bool,
}

/// 128-bit FNV-1a over the keyed text, as 32 hex chars. Not
/// cryptographic — good enough to key a trusted-client cache, and it
/// keeps the hit path free of any parsing work.
fn content_hash(format: &str, text: &str) -> String {
    fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
        let mut h = seed;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
    let mut keyed = String::with_capacity(format.len() + 1 + text.len());
    keyed.push_str(format);
    keyed.push('\0');
    keyed.push_str(text);
    let a = fnv1a(0xcbf2_9ce4_8422_2325, keyed.as_bytes());
    // Second lane: different offset basis, walking the bytes in reverse.
    let mut b = 0x6c62_272e_07bb_0142u64;
    for &byte in keyed.as_bytes().iter().rev() {
        b ^= byte as u64;
        b = b.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{a:016x}{b:016x}")
}

/// The circuit host loop: owns the circuit, shares analyzer + pool across
/// `workers` scoped threads, drains the job queue until it is closed (or
/// the `dead` flag is raised — the simulated-crash path the supervisor
/// recovers from).
fn host_loop(
    circuit: Circuit,
    jobs: Arc<Bounded<Job>>,
    pool_stats: Arc<Mutex<PoolStats>>,
    dead: Arc<AtomicBool>,
    active: Arc<AtomicU64>,
    metrics: Arc<Metrics>,
    workers: usize,
) {
    let analyzer = Analyzer::new(&circuit);
    let base = InputProbs::uniform(circuit.num_inputs());
    let pool = match SessionPool::new(&analyzer, base) {
        Ok(pool) => pool,
        Err(e) => {
            // Construction failed (degenerate circuit): answer every job
            // with a typed error instead of leaving clients to time out.
            let err = WireError::new(ErrorKind::Analysis, e.to_string());
            while let Some(job) = jobs.pop() {
                let n = job.ops.len();
                let _ = job.reply.send(JobOutcome {
                    results: vec![Err(err.clone()); n],
                    timing: JobTiming::default(),
                });
            }
            return;
        }
    };
    pool.warm(workers);
    *pool_stats.lock().unwrap() = pool.stats();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Short timed pops instead of a blocking `pop`, so every
                // worker notices the dead flag promptly. After `close`,
                // remaining jobs still drain before `Closed` is returned
                // — the graceful-shutdown contract.
                if dead.load(Ordering::Relaxed) {
                    return;
                }
                let job = match jobs.pop_timeout(WORKER_TICK) {
                    Popped::Item(job) => job,
                    Popped::Empty => continue,
                    Popped::Closed => return,
                };
                // Re-check after the pop: a sibling worker may have
                // crashed while this one was blocked. A crashed host
                // must go down whole — answering a job popped *after*
                // the crash would make the failure half-visible. The
                // dropped job surfaces as a typed `internal` reply, and
                // the job re-queued by its client drains on the
                // supervisor's respawned host.
                if dead.load(Ordering::Relaxed) {
                    return;
                }
                active.fetch_add(1, Ordering::Relaxed);
                if failpoints::hit("serve.host.exit") {
                    // Simulated host crash: every worker of this host
                    // stops, the popped job goes unanswered (the client
                    // gets a typed `internal` reply via the dropped
                    // channel), and the supervisor respawns the host.
                    active.fetch_sub(1, Ordering::Relaxed);
                    dead.store(true, Ordering::Relaxed);
                    return;
                }
                // The queue-wait phase ends at this pop; stamp it for the
                // reply timing and (when tracing is armed) the trace.
                let queue_wait_us =
                    protest_telemetry::now_ns().saturating_sub(job.enqueued_ns) / 1_000;
                protest_telemetry::record_span(
                    protest_telemetry::Site::ServeQueueWait,
                    job.enqueued_ns,
                );
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let checkout_span =
                        protest_telemetry::span(protest_telemetry::Site::ServeCheckout);
                    let checkout_start = Instant::now();
                    let mut session = pool.checkout();
                    session.set_cancel(job.cancel.clone());
                    let checkout_us = checkout_start.elapsed().as_micros() as u64;
                    drop(checkout_span);
                    failpoints::hit("serve.worker.delay");
                    if failpoints::hit("serve.worker.panic") {
                        // Deliberately after the checkout: the unwind must
                        // exercise the pool's discard-on-panic path.
                        panic!("injected worker panic (failpoint serve.worker.panic)");
                    }
                    let compute_span =
                        protest_telemetry::span(protest_telemetry::Site::ServeCompute);
                    let compute_start = Instant::now();
                    let results = job
                        .ops
                        .iter()
                        .map(|op| run_op(&circuit, &analyzer, &mut session, &job.cancel, op))
                        .collect::<JobReply>();
                    let compute_us = compute_start.elapsed().as_micros() as u64;
                    drop(compute_span);
                    (results, checkout_us, compute_us)
                    // The checkout drops here: a clean return disarms and
                    // re-syncs it into the pool; a poisoned session (or a
                    // drop during a panic unwind) is discarded instead.
                }));
                let (results, timing) = match outcome {
                    Ok((results, checkout_us, compute_us)) => (
                        results,
                        JobTiming {
                            queue_wait_us,
                            checkout_us,
                            compute_us,
                        },
                    ),
                    Err(_) => {
                        metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                        let err = WireError::new(
                            ErrorKind::Internal,
                            "worker panicked while executing the request; \
                             its session was discarded",
                        );
                        (
                            vec![Err(err); job.ops.len()],
                            JobTiming {
                                queue_wait_us,
                                ..JobTiming::default()
                            },
                        )
                    }
                };
                if results
                    .iter()
                    .any(|r| matches!(r, Err(e) if e.kind == ErrorKind::Cancelled))
                {
                    metrics.cancelled_work.fetch_add(1, Ordering::Relaxed);
                }
                *pool_stats.lock().unwrap() = pool.stats();
                // A dropped receiver (request timed out) is fine.
                let _ = job.reply.send(JobOutcome { results, timing });
                active.fetch_sub(1, Ordering::Relaxed);
            });
        }
    });
}

/// The content-hash circuit registry (see the module docs).
pub struct Registry {
    entries: Mutex<HashMap<String, Arc<Entry>>>,
    metrics: Arc<Metrics>,
    /// Worker threads per circuit host.
    workers_per_circuit: usize,
    /// Job-queue capacity per circuit (backpressure bound).
    queue_capacity: usize,
    /// Resident-circuit cap (`0` = unlimited); inserting past it evicts
    /// the least-recently-used idle host.
    max_circuits: usize,
    /// When `true` (the default), a request that exceeds its deadline
    /// cancels its in-flight computation instead of letting it run on.
    cancel_on_timeout: bool,
    /// The LRU clock origin for `Entry::last_used`.
    epoch: Instant,
}

impl Registry {
    /// Creates an empty registry. `max_circuits == 0` means unlimited;
    /// `cancel_on_timeout` controls whether a request timeout also stops
    /// the in-flight computation.
    pub fn new(
        metrics: Arc<Metrics>,
        workers_per_circuit: usize,
        queue_capacity: usize,
        max_circuits: usize,
        cancel_on_timeout: bool,
    ) -> Self {
        Registry {
            entries: Mutex::new(HashMap::new()),
            metrics,
            workers_per_circuit: workers_per_circuit.max(1),
            queue_capacity: queue_capacity.max(1),
            max_circuits,
            cancel_on_timeout,
            epoch: Instant::now(),
        }
    }

    /// Spawns the host thread for an entry's circuit. Shared by initial
    /// registration and supervisor respawn.
    fn spawn_host(
        &self,
        name: &str,
        circuit: Circuit,
        jobs: Arc<Bounded<Job>>,
        pool_stats: Arc<Mutex<PoolStats>>,
        dead: Arc<AtomicBool>,
        active: Arc<AtomicU64>,
    ) -> JoinHandle<()> {
        let workers = self.workers_per_circuit;
        let metrics = Arc::clone(&self.metrics);
        std::thread::Builder::new()
            .name(format!("host-{name}"))
            .spawn(move || host_loop(circuit, jobs, pool_stats, dead, active, metrics, workers))
            .expect("spawn circuit host thread")
    }

    fn spawn_entry(&self, hash: String, circuit: Circuit) -> Arc<Entry> {
        let jobs = Arc::new(Bounded::new(self.queue_capacity));
        let pool_stats = Arc::new(Mutex::new(PoolStats::default()));
        let dead = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicU64::new(0));
        let entry = Arc::new(Entry {
            hash,
            name: circuit.name().to_string(),
            inputs: circuit.num_inputs(),
            outputs: circuit.num_outputs(),
            gates: circuit.num_gates(),
            jobs: Arc::clone(&jobs),
            pool_stats: Arc::clone(&pool_stats),
            host: Mutex::new(None),
            circuit: circuit.clone(),
            active: Arc::clone(&active),
            dead: Arc::clone(&dead),
            last_used: AtomicU64::new(self.epoch.elapsed().as_millis() as u64),
        });
        let handle = self.spawn_host(&entry.name, circuit, jobs, pool_stats, dead, active);
        *entry.host.lock().unwrap() = Some(handle);
        entry
    }

    /// Makes room for one more entry when `max_circuits` is reached:
    /// gracefully shuts down the least-recently-used *idle* host (empty
    /// queue, nothing in flight). With every resident circuit busy there
    /// is nothing safe to evict — the submit is shed with `busy`.
    fn evict_for_capacity(
        &self,
        entries: &mut HashMap<String, Arc<Entry>>,
    ) -> Result<(), WireError> {
        if self.max_circuits == 0 || entries.len() < self.max_circuits {
            return Ok(());
        }
        let victim = entries
            .values()
            .filter(|e| e.jobs.is_empty() && e.active.load(Ordering::Relaxed) == 0)
            .min_by_key(|e| e.last_used.load(Ordering::Relaxed))
            .map(|e| e.hash.clone());
        let Some(hash) = victim else {
            return Err(WireError::new(
                ErrorKind::Busy,
                format!(
                    "registry is at capacity ({}) and every circuit is busy, retry later",
                    self.max_circuits
                ),
            ));
        };
        let entry = entries.remove(&hash).expect("victim key was just observed");
        entry.jobs.close();
        let handle = entry.host.lock().unwrap().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
        self.metrics.evictions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Registers (or re-finds) a netlist given by text. The hash is
    /// computed *before* any parsing, so the hit path costs one hash and
    /// one map lookup.
    pub fn submit_text(
        &self,
        format: &str,
        name: Option<&str>,
        text: &str,
    ) -> Result<SubmitOutcome, WireError> {
        let hash = content_hash(format, text);
        let mut entries = self.entries.lock().unwrap();
        if let Some(entry) = entries.get(&hash) {
            self.metrics
                .cache_hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(SubmitOutcome {
                entry: Arc::clone(entry),
                cached: true,
            });
        }
        self.metrics
            .cache_misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let name = name.unwrap_or("circuit");
        let circuit = match format {
            "pdl" => parse_pdl(name, text),
            _ => parse_bench(name, text),
        }
        .map_err(|e| WireError::new(ErrorKind::Netlist, e.to_string()))?;
        self.evict_for_capacity(&mut entries)?;
        let entry = self.spawn_entry(hash.clone(), circuit);
        entries.insert(hash, Arc::clone(&entry));
        self.metrics
            .circuits
            .store(entries.len() as u64, std::sync::atomic::Ordering::Relaxed);
        Ok(SubmitOutcome {
            entry,
            cached: false,
        })
    }

    /// Registers (or re-finds) a built-in circuit, keyed `builtin:<name>`.
    pub fn submit_builtin(&self, name: &str) -> Result<SubmitOutcome, WireError> {
        let hash = format!("builtin:{name}");
        let mut entries = self.entries.lock().unwrap();
        if let Some(entry) = entries.get(&hash) {
            self.metrics
                .cache_hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(SubmitOutcome {
                entry: Arc::clone(entry),
                cached: true,
            });
        }
        self.metrics
            .cache_misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let circuit = protest_circuits::by_name(name).ok_or_else(|| {
            WireError::new(
                ErrorKind::NotFound,
                format!(
                    "unknown builtin `{name}` (known: {})",
                    protest_circuits::BUILTIN_NAMES.join(", ")
                ),
            )
        })?;
        self.evict_for_capacity(&mut entries)?;
        let entry = self.spawn_entry(hash.clone(), circuit);
        entries.insert(hash, Arc::clone(&entry));
        self.metrics
            .circuits
            .store(entries.len() as u64, std::sync::atomic::Ordering::Relaxed);
        Ok(SubmitOutcome {
            entry,
            cached: false,
        })
    }

    /// Looks up a registered circuit by hash.
    pub fn get(&self, hash: &str) -> Option<Arc<Entry>> {
        self.entries.lock().unwrap().get(hash).cloned()
    }

    /// Runs `ops` on the circuit `hash` over one session checkout,
    /// waiting at most `timeout` for the reply. The job carries a
    /// [`CancelToken`] armed with the deadline, so giving up on the wait
    /// also stops the computation (unless `cancel_on_timeout` is off).
    pub fn dispatch(
        &self,
        hash: &str,
        ops: Vec<CircuitOp>,
        timeout: Duration,
    ) -> Result<JobOutcome, WireError> {
        use std::sync::atomic::Ordering::Relaxed;
        let entry = self.get(hash).ok_or_else(|| {
            WireError::new(
                ErrorKind::NotFound,
                format!("no circuit with hash `{hash}` — submit it first"),
            )
        })?;
        entry
            .last_used
            .store(self.epoch.elapsed().as_millis() as u64, Relaxed);
        let cancel = if self.cancel_on_timeout {
            CancelToken::after(timeout)
        } else {
            CancelToken::never()
        };
        let (tx, rx) = mpsc::sync_channel(1);
        let job = Job {
            ops,
            reply: tx,
            cancel: cancel.clone(),
            enqueued_ns: protest_telemetry::now_ns(),
        };
        match entry.jobs.try_push(job) {
            Ok(()) => {}
            Err(PushError::Full(_)) => {
                self.metrics.busy.fetch_add(1, Relaxed);
                return Err(WireError::new(
                    ErrorKind::Busy,
                    format!("circuit `{}` job queue is full, retry later", entry.name),
                ));
            }
            Err(PushError::Closed(_)) => {
                return Err(WireError::new(
                    ErrorKind::ShuttingDown,
                    "server is draining".to_string(),
                ));
            }
        }
        match rx.recv_timeout(timeout) {
            Ok(reply) => Ok(reply),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Flip the flag explicitly too: the deadline has passed
                // on the token's own clock, but this also covers a job
                // still sitting in the queue.
                cancel.cancel();
                self.metrics.timeouts.fetch_add(1, Relaxed);
                Err(WireError::new(
                    ErrorKind::Timeout,
                    format!("request exceeded the {:.1}s limit", timeout.as_secs_f64()),
                ))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // The reply sender was dropped without an answer: the
                // host crashed mid-job (thread death, not a contained
                // panic). Say so instead of blaming the clock.
                Err(WireError::new(
                    ErrorKind::Internal,
                    "circuit host crashed while executing the request; \
                     the supervisor will restart it"
                        .to_string(),
                ))
            }
        }
    }

    /// One supervisor pass: respawns the host thread of every circuit
    /// whose thread has exited while its job queue is still open (a
    /// crash — a panic that escaped a worker scope, or the
    /// `serve.host.exit` failpoint). Queued jobs survive and drain on
    /// the fresh host. Returns the number of hosts restarted.
    pub fn supervise(&self) -> usize {
        let entries = self.entries.lock().unwrap();
        let mut restarted = 0;
        for entry in entries.values() {
            let mut host = entry.host.lock().unwrap();
            let finished = host.as_ref().is_some_and(JoinHandle::is_finished);
            if !finished || entry.jobs.is_closed() {
                continue;
            }
            if let Some(h) = host.take() {
                let _ = h.join();
            }
            entry.dead.store(false, Ordering::Relaxed);
            *host = Some(self.spawn_host(
                &entry.name,
                entry.circuit.clone(),
                Arc::clone(&entry.jobs),
                Arc::clone(&entry.pool_stats),
                Arc::clone(&entry.dead),
                Arc::clone(&entry.active),
            ));
            self.metrics.host_restarts.fetch_add(1, Ordering::Relaxed);
            restarted += 1;
        }
        restarted
    }

    /// Refreshes the cross-circuit gauges (queue depth, session pool
    /// counters) on the shared metrics hub.
    pub fn refresh_gauges(&self) {
        use std::sync::atomic::Ordering::Relaxed;
        let entries = self.entries.lock().unwrap();
        let mut depth = 0u64;
        let mut agg = PoolStats::default();
        for entry in entries.values() {
            depth += entry.jobs.len() as u64;
            let s = *entry.pool_stats.lock().unwrap();
            agg.warm_hits += s.warm_hits;
            agg.cold_clones += s.cold_clones;
            agg.live += s.live;
            agg.idle += s.idle;
            agg.discarded += s.discarded;
        }
        self.metrics.queue_depth.store(depth, Relaxed);
        self.metrics.sessions_live.store(agg.live, Relaxed);
        self.metrics.sessions_idle.store(agg.idle, Relaxed);
        self.metrics.session_warm_hits.store(agg.warm_hits, Relaxed);
        self.metrics
            .session_cold_clones
            .store(agg.cold_clones, Relaxed);
        self.metrics
            .sessions_discarded
            .store(agg.discarded, Relaxed);
    }

    /// Closes every job queue and joins every host thread. Queued jobs
    /// drain first (close-then-drain queue semantics); nothing accepted
    /// is dropped.
    pub fn shutdown(&self) {
        let handles: Vec<(Arc<Entry>, Option<JoinHandle<()>>)> = {
            let entries = self.entries.lock().unwrap();
            entries
                .values()
                .map(|e| {
                    e.jobs.close();
                    (Arc::clone(e), e.host.lock().unwrap().take())
                })
                .collect()
        };
        for (_, handle) in handles {
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProbSpec;

    const TIMEOUT: Duration = Duration::from_secs(30);

    fn analyze_op() -> CircuitOp {
        CircuitOp::Analyze {
            probs: ProbSpec::Constant(0.5),
            testlens: vec![(1.0, 0.95)],
            hardest: 0,
            detect_probs: true,
            signal_probs: false,
        }
    }

    #[test]
    fn content_hash_is_stable_and_format_keyed() {
        let a = content_hash("bench", "INPUT(a)");
        assert_eq!(a, content_hash("bench", "INPUT(a)"));
        assert_ne!(a, content_hash("pdl", "INPUT(a)"));
        assert_ne!(a, content_hash("bench", "INPUT(b)"));
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn submit_twice_hits_cache_and_shares_entry() {
        let metrics = Arc::new(Metrics::default());
        let reg = Registry::new(Arc::clone(&metrics), 2, 8, 0, true);
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n";
        let first = reg.submit_text("bench", Some("t"), text).unwrap();
        assert!(!first.cached);
        let second = reg.submit_text("bench", Some("t"), text).unwrap();
        assert!(second.cached);
        assert!(Arc::ptr_eq(&first.entry, &second.entry));
        assert_eq!(
            metrics
                .cache_hits
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        reg.shutdown();
    }

    #[test]
    fn dispatch_runs_ops_and_batches_share_a_session() {
        let reg = Registry::new(Arc::new(Metrics::default()), 2, 8, 0, true);
        let out = reg.submit_builtin("c17").unwrap();
        let outcome = reg
            .dispatch(&out.entry.hash, vec![analyze_op(), analyze_op()], TIMEOUT)
            .unwrap();
        assert_eq!(outcome.results.len(), 2);
        let a = outcome.results[0].as_ref().unwrap().to_line();
        let b = outcome.results[1].as_ref().unwrap().to_line();
        assert_eq!(a, b, "same op in one batch must give identical bits");
        reg.shutdown();
    }

    #[test]
    fn dispatch_unknown_hash_is_not_found() {
        let reg = Registry::new(Arc::new(Metrics::default()), 1, 2, 0, true);
        let err = reg
            .dispatch("nope", vec![analyze_op()], TIMEOUT)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::NotFound);
        reg.shutdown();
    }

    #[test]
    fn bad_netlist_is_typed_error_and_not_cached() {
        let metrics = Arc::new(Metrics::default());
        let reg = Registry::new(Arc::clone(&metrics), 1, 2, 0, true);
        let err = reg
            .submit_text("bench", None, "this is not a netlist")
            .err()
            .unwrap();
        assert_eq!(err.kind, ErrorKind::Netlist);
        // The failed submit must not leave a poisoned cache entry behind.
        let err2 = reg
            .submit_text("bench", None, "this is not a netlist")
            .err()
            .unwrap();
        assert_eq!(err2.kind, ErrorKind::Netlist);
        reg.shutdown();
    }
}
