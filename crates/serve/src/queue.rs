//! A small bounded MPMC queue (mutex + condvars) — the backpressure
//! primitive between the accept thread, the request handlers and the
//! per-circuit workers.
//!
//! `std::sync::mpsc` receivers are single-consumer; the daemon needs many
//! handler threads popping connections and many circuit workers popping
//! jobs, so this carries its own ~100-line queue instead. Semantics:
//!
//! * [`try_push`](Bounded::try_push) never blocks — a full queue is the
//!   caller's signal to shed load (reply `busy`) instead of queueing
//!   unboundedly;
//! * [`push_blocking`](Bounded::push_blocking) waits for space — the
//!   accept thread's form of backpressure (connections wait in the OS
//!   accept backlog);
//! * [`pop`](Bounded::pop) blocks until an item or close; after
//!   [`close`](Bounded::close) remaining items still drain (pop returns
//!   them) and only then does `pop` return `None` — the graceful-shutdown
//!   contract: nothing accepted is dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a [`Bounded::try_push`] did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was at capacity; the item is handed back.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

/// Outcome of a [`Bounded::pop_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed on an open-but-empty queue.
    Empty,
    /// The queue is closed and fully drained.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue (see the module docs).
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Bounded<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues without blocking.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, waiting for space; returns the item back if the queue is
    /// (or becomes) closed.
    pub fn push_blocking(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).unwrap();
        }
    }

    /// Dequeues, blocking until an item arrives or — once the queue is
    /// closed *and* drained — returning `None`.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap();
        }
    }

    /// Like [`pop`](Self::pop) but gives up after `timeout`; see
    /// [`Popped`] for the three outcomes.
    pub fn pop_timeout(&self, timeout: Duration) -> Popped<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Popped::Item(item);
            }
            if state.closed {
                return Popped::Closed;
            }
            let (next, result) = self.not_empty.wait_timeout(state, timeout).unwrap();
            state = next;
            if result.timed_out() {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.not_full.notify_one();
                    return Popped::Item(item);
                }
                return if state.closed {
                    Popped::Closed
                } else {
                    Popped::Empty
                };
            }
        }
    }

    /// Current queue length.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`close`](Self::close) has been called. Items may still be
    /// draining; this only reports that no new pushes are accepted.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Closes the queue: pushes start failing, pops drain the remainder
    /// and then return `None`. All waiters wake.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_backpressure() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Popped::Closed);
    }

    #[test]
    fn cross_thread_handoff() {
        let q = Arc::new(Bounded::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..100 {
            q.push_blocking(i).unwrap();
        }
        q.close();
        assert_eq!(consumer.join().unwrap(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_timeout_on_empty_open_queue() {
        let q: Bounded<u32> = Bounded::new(1);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Popped::Empty);
        q.try_push(7).unwrap();
        assert!(!q.is_empty());
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Popped::Item(7));
    }
}
