//! Executes [`CircuitOp`]s against a registered circuit.
//!
//! Every op runs inside a circuit host (see [`crate::registry`]): the
//! `Circuit` and `Analyzer` are shared by reference across all requests,
//! and incremental ops borrow a warm [`AnalysisSession`] checked out from
//! the host's [`SessionPool`](protest_core::SessionPool). A `batch`
//! request re-uses ONE checkout for all of its entries, so consecutive
//! analyses of nearby probability vectors pay only the dirty-cone cost.

use protest_core::optimize::{HillClimber, OptimizeParams};
use protest_core::staticanalysis;
use protest_core::testlen::required_test_length_fraction;
use protest_core::tpi::{self, TpiParams};
use protest_core::{
    AnalysisSession, Analyzer, AnalyzerParams, CancelToken, CheckParams, CoreError, FaultEstimate,
    InputProbs,
};
use protest_netlist::Circuit;
use protest_sim::weighted_coverage;

use crate::json::Json;
use crate::protocol::{CircuitOp, ErrorKind, ProbSpec, WireError};

/// Maps a core failure onto the wire: a cooperative cancellation becomes
/// the typed `cancelled` kind so clients can distinguish "your deadline
/// stopped the math" from "your parameters were bad".
fn analysis_err(e: CoreError) -> WireError {
    match e {
        CoreError::Cancelled => WireError::new(
            ErrorKind::Cancelled,
            "analysis cancelled: request deadline exceeded",
        ),
        other => WireError::new(ErrorKind::Analysis, other.to_string()),
    }
}

/// Materializes a [`ProbSpec`] for a circuit with `inputs` primary inputs.
fn resolve_probs(spec: &ProbSpec, inputs: usize) -> Result<InputProbs, WireError> {
    match spec {
        ProbSpec::Constant(p) => InputProbs::constant(inputs, *p).map_err(analysis_err),
        ProbSpec::Explicit(v) => {
            if v.len() != inputs {
                return Err(WireError::new(
                    ErrorKind::Analysis,
                    format!(
                        "`probs` has {} entries, circuit has {inputs} inputs",
                        v.len()
                    ),
                ));
            }
            InputProbs::from_slice(v).map_err(analysis_err)
        }
    }
}

fn f64_arr(xs: &[f64]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect())
}

/// `testlen` reply rows: `{"d":..,"e":..,"patterns":N|null}` per target.
fn testlen_rows(detect: &[f64], targets: &[(f64, f64)]) -> Json {
    Json::Arr(
        targets
            .iter()
            .map(|&(d, e)| {
                let n = required_test_length_fraction(detect, d, e);
                Json::obj(vec![
                    ("d", Json::Num(d)),
                    ("e", Json::Num(e)),
                    (
                        "patterns",
                        n.map_or(Json::Null, |t| Json::Num(t.patterns as f64)),
                    ),
                ])
            })
            .collect(),
    )
}

/// The `k` least-testable faults, labelled against the circuit.
fn hardest_rows(circuit: &Circuit, estimates: &[FaultEstimate], k: usize) -> Json {
    let mut sorted: Vec<&FaultEstimate> = estimates.iter().collect();
    sorted.sort_by(|a, b| {
        a.detection
            .partial_cmp(&b.detection)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Json::Arr(
        sorted
            .into_iter()
            .take(k)
            .map(|e| {
                Json::obj(vec![
                    ("fault", Json::str(&e.fault.label(circuit))),
                    ("detection", Json::Num(e.detection)),
                    ("activation", Json::Num(e.activation)),
                    ("observability", Json::Num(e.observability)),
                ])
            })
            .collect(),
    )
}

fn run_analyze(
    circuit: &Circuit,
    session: &mut AnalysisSession<'_, '_>,
    probs: &ProbSpec,
    testlens: &[(f64, f64)],
    hardest: usize,
    want_detect: bool,
    want_signal: bool,
) -> Result<Json, WireError> {
    let probs = resolve_probs(probs, circuit.num_inputs())?;
    session.set_all(probs.as_slice()).map_err(analysis_err)?;
    // The session may carry an armed deadline token, so every query goes
    // through the fallible `try_*` forms.
    let detect = session
        .try_fault_detect_probs()
        .map_err(analysis_err)?
        .to_vec();
    let mut fields: Vec<(&str, Json)> = vec![
        ("circuit", Json::str(circuit.name())),
        ("inputs", Json::Num(circuit.num_inputs() as f64)),
        ("faults", Json::Num(detect.len() as f64)),
    ];
    if want_signal {
        fields.push((
            "signal_probs",
            f64_arr(session.try_signal_probs().map_err(analysis_err)?),
        ));
    }
    if want_detect {
        fields.push(("detect_probs", f64_arr(&detect)));
    }
    fields.push(("testlen", testlen_rows(&detect, testlens)));
    if hardest > 0 {
        fields.push((
            "hardest",
            hardest_rows(
                circuit,
                session.try_fault_estimates().map_err(analysis_err)?,
                hardest,
            ),
        ));
    }
    Ok(Json::obj(fields))
}

fn run_optimize(
    circuit: &Circuit,
    analyzer: &Analyzer<'_>,
    session: &mut AnalysisSession<'_, '_>,
    cancel: &CancelToken,
    n_target: u64,
    seed: u64,
    testlens: &[(f64, f64)],
) -> Result<Json, WireError> {
    let params = OptimizeParams {
        n_target,
        seed,
        ..OptimizeParams::default()
    };
    let result = HillClimber::new(analyzer, params)
        .with_cancel(cancel.clone())
        .optimize()
        .map_err(analysis_err)?;
    // Evaluate the requested test-length targets at the optimum, re-using
    // the batch's warm session rather than a fresh full pass.
    session
        .set_all(result.probs.as_slice())
        .map_err(analysis_err)?;
    let detect = session
        .try_fault_detect_probs()
        .map_err(analysis_err)?
        .to_vec();
    Ok(Json::obj(vec![
        ("circuit", Json::str(circuit.name())),
        ("probs", f64_arr(result.probs.as_slice())),
        ("objective_ln", Json::Num(result.objective_ln)),
        (
            "initial_objective_ln",
            Json::Num(result.initial_objective_ln),
        ),
        ("rounds", Json::Num(result.rounds as f64)),
        ("evaluations", Json::Num(result.evaluations as f64)),
        ("testlen", testlen_rows(&detect, testlens)),
    ]))
}

fn run_tpi(
    circuit: &Circuit,
    cancel: &CancelToken,
    budget: usize,
    max_candidates: usize,
    target_d: f64,
    target_e: f64,
    dry_run: bool,
) -> Result<Json, WireError> {
    let params = TpiParams {
        analyzer: AnalyzerParams::default(),
        budget,
        frac_d: target_d,
        conf_e: target_e,
        max_candidates,
        ..TpiParams::default()
    };
    if dry_run {
        let (base, ranked) =
            tpi::rank_with_cancel(circuit, &params, cancel).map_err(analysis_err)?;
        return Ok(Json::obj(vec![
            ("circuit", Json::str(circuit.name())),
            (
                "base_patterns",
                base.map_or(Json::Null, |t| Json::Num(t.patterns as f64)),
            ),
            (
                "candidates",
                Json::Arr(
                    ranked
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("node", Json::str(&c.label)),
                                ("kind", Json::str(c.spec.kind.mnemonic())),
                                (
                                    "predicted_patterns",
                                    c.predicted
                                        .map_or(Json::Null, |t| Json::Num(t.patterns as f64)),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }
    let result = tpi::advise_with_cancel(circuit, &params, cancel).map_err(analysis_err)?;
    let final_patterns = result
        .steps
        .last()
        .map_or(result.base_patterns, |s| s.realized_patterns);
    Ok(Json::obj(vec![
        ("circuit", Json::str(circuit.name())),
        (
            "base_patterns",
            result
                .base_patterns
                .map_or(Json::Null, |n| Json::Num(n as f64)),
        ),
        (
            "steps",
            Json::Arr(
                result
                    .steps
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("node", Json::str(&s.label)),
                            ("kind", Json::str(s.spec.kind.mnemonic())),
                            ("gate", Json::str(&s.gate_name)),
                            (
                                "predicted_patterns",
                                s.predicted_patterns
                                    .map_or(Json::Null, |n| Json::Num(n as f64)),
                            ),
                            (
                                "realized_patterns",
                                s.realized_patterns
                                    .map_or(Json::Null, |n| Json::Num(n as f64)),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "final_patterns",
            final_patterns.map_or(Json::Null, |n| Json::Num(n as f64)),
        ),
        ("stopped_early", Json::Bool(result.stopped_early)),
        (
            "added_inputs",
            Json::Num((result.circuit.num_inputs() - circuit.num_inputs()) as f64),
        ),
        (
            "added_outputs",
            Json::Num((result.circuit.num_outputs() - circuit.num_outputs()) as f64),
        ),
    ]))
}

fn run_check(
    circuit: &Circuit,
    cancel: &CancelToken,
    prove_redundant: bool,
    bdd_budget: usize,
) -> Result<Json, WireError> {
    let params = CheckParams {
        prove_redundant,
        node_budget: bdd_budget,
        num_threads: 0,
    };
    let report =
        staticanalysis::check_cancellable(circuit, &params, cancel).map_err(analysis_err)?;
    // StaticReport::to_json is pretty-printed (multi-line); re-parse it
    // through our own reader so the reply stays a single line. The values
    // pass through bit-exactly (shortest-roundtrip float formatting).
    let parsed = Json::parse(&report.to_json()).map_err(|e| {
        WireError::new(
            ErrorKind::Analysis,
            format!("internal: check report did not round-trip: {e}"),
        )
    })?;
    Ok(parsed)
}

fn run_simulate(
    circuit: &Circuit,
    analyzer: &Analyzer<'_>,
    cancel: &CancelToken,
    probs: &ProbSpec,
    patterns: u64,
    seed: u64,
) -> Result<Json, WireError> {
    // The simulator has no internal poll points; refuse up front so an
    // already-expired deadline never starts a pattern sweep.
    cancel.check().map_err(analysis_err)?;
    let weights = resolve_probs(probs, circuit.num_inputs())?;
    let curve = weighted_coverage(
        circuit,
        analyzer.faults(),
        weights.as_slice(),
        seed,
        patterns,
    );
    let last = curve.checkpoints.last();
    Ok(Json::obj(vec![
        ("circuit", Json::str(circuit.name())),
        ("patterns", Json::Num(patterns as f64)),
        ("total_faults", Json::Num(curve.total_faults as f64)),
        ("detected", Json::Num(last.map_or(0, |c| c.detected) as f64)),
        ("coverage_percent", Json::Num(curve.final_percent())),
    ]))
}

/// Runs one op. `session` is the request's (or batch's) single warm
/// checkout; ops that work on the bare circuit ignore it. `cancel` is
/// the request's deadline token — the session is expected to already be
/// armed with it (see the worker loop in [`crate::registry`]), and ops
/// that build their own analysis state thread it down explicitly.
pub fn run_op(
    circuit: &Circuit,
    analyzer: &Analyzer<'_>,
    session: &mut AnalysisSession<'_, '_>,
    cancel: &CancelToken,
    op: &CircuitOp,
) -> Result<Json, WireError> {
    match op {
        CircuitOp::Analyze {
            probs,
            testlens,
            hardest,
            detect_probs,
            signal_probs,
        } => run_analyze(
            circuit,
            session,
            probs,
            testlens,
            *hardest,
            *detect_probs,
            *signal_probs,
        ),
        CircuitOp::Optimize {
            n_target,
            seed,
            testlens,
        } => run_optimize(
            circuit, analyzer, session, cancel, *n_target, *seed, testlens,
        ),
        CircuitOp::Tpi {
            budget,
            max_candidates,
            target_d,
            target_e,
            dry_run,
        } => run_tpi(
            circuit,
            cancel,
            *budget,
            *max_candidates,
            *target_d,
            *target_e,
            *dry_run,
        ),
        CircuitOp::Check {
            prove_redundant,
            bdd_budget,
        } => run_check(circuit, cancel, *prove_redundant, *bdd_budget),
        CircuitOp::Simulate {
            probs,
            patterns,
            seed,
        } => run_simulate(circuit, analyzer, cancel, probs, *patterns, *seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protest_circuits::by_name;

    fn session_pair() -> (Circuit, ()) {
        (by_name("c17").unwrap(), ())
    }

    #[test]
    fn analyze_matches_direct_session() {
        let (ckt, _) = session_pair();
        let analyzer = Analyzer::new(&ckt);
        let probs = InputProbs::uniform(ckt.num_inputs());
        let mut session = analyzer.session(&probs).unwrap();
        let op = CircuitOp::Analyze {
            probs: ProbSpec::Constant(0.5),
            testlens: vec![(1.0, 0.95)],
            hardest: 3,
            detect_probs: true,
            signal_probs: true,
        };
        let out = run_op(&ckt, &analyzer, &mut session, &CancelToken::never(), &op).unwrap();

        let mut direct = analyzer.session(&probs).unwrap();
        let want = direct.fault_detect_probs().to_vec();
        let got: Vec<f64> = out
            .get("detect_probs")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert_eq!(
            got.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|p| p.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(out.get("hardest").and_then(Json::as_arr).unwrap().len(), 3);
    }

    #[test]
    fn check_report_roundtrips() {
        let (ckt, _) = session_pair();
        let analyzer = Analyzer::new(&ckt);
        let probs = InputProbs::uniform(ckt.num_inputs());
        let mut session = analyzer.session(&probs).unwrap();
        let op = CircuitOp::Check {
            prove_redundant: false,
            bdd_budget: 10_000,
        };
        let out = run_op(&ckt, &analyzer, &mut session, &CancelToken::never(), &op).unwrap();
        assert_eq!(out.get("circuit").and_then(Json::as_str), Some("c17"));
        assert!(!out.to_line().contains('\n'));
    }

    #[test]
    fn bad_prob_vector_is_typed_error() {
        let (ckt, _) = session_pair();
        let analyzer = Analyzer::new(&ckt);
        let probs = InputProbs::uniform(ckt.num_inputs());
        let mut session = analyzer.session(&probs).unwrap();
        let op = CircuitOp::Analyze {
            probs: ProbSpec::Explicit(vec![0.5; 3]),
            testlens: vec![],
            hardest: 0,
            detect_probs: false,
            signal_probs: false,
        };
        let err = run_op(&ckt, &analyzer, &mut session, &CancelToken::never(), &op).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Analysis);
    }
}
