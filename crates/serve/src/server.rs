//! The TCP front end: accept loop, handler threads, request routing,
//! graceful drain.
//!
//! Thread model (all `std`, no async runtime):
//!
//! * **accept thread** — non-blocking accept loop polling the shutdown
//!   flag; accepted connections go to a bounded queue (its `push_blocking`
//!   is the accept-side backpressure: when every handler is busy, new
//!   connections wait in the OS backlog).
//! * **N handler threads** — pop connections, frame request lines (size
//!   cap with discard-to-newline recovery), parse, route. A handler owns
//!   its connection for the connection's lifetime; short read timeouts
//!   let it notice shutdown between requests.
//! * **per-circuit hosts** — see [`crate::registry`]; handlers talk to
//!   them through bounded job queues with a per-request timeout.
//! * **supervisor thread** — periodically respawns any circuit host
//!   whose thread died with its queue still open, so one crashed host
//!   never takes the daemon's warm state down with it.
//! * **optional stats logger** — a periodic one-line metrics report.
//!
//! Malformed JSON, unknown ops, oversized lines, full queues and analysis
//! failures all produce typed error *replies* — no input takes the daemon
//! down, and the connection stays open (request framing resynchronizes at
//! the next newline).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::metrics::{Endpoint, Metrics};
use crate::protocol::{
    err_line, ok_line, ok_line_timed, parse_request, ErrorKind, Op, Request, WireError,
};
use crate::queue::Bounded;
use crate::registry::Registry;

/// Tuning of [`serve`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Request handler threads.
    pub handlers: usize,
    /// Analysis worker threads per registered circuit.
    pub workers_per_circuit: usize,
    /// Job-queue capacity per circuit (beyond it requests get `busy`).
    pub queue_capacity: usize,
    /// Per-request wall-clock limit.
    pub request_timeout: Duration,
    /// Request line size cap in bytes (beyond it: `oversized` reply).
    pub max_line_bytes: usize,
    /// Emit a one-line stats report this often (`None` = never).
    pub log_every: Option<Duration>,
    /// Resident-circuit cap (`0` = unlimited). Submitting past it evicts
    /// the least-recently-used idle circuit host; with every host busy
    /// the submit is shed with a typed `busy` reply.
    pub max_circuits: usize,
    /// When `true` (the default), a request that exceeds
    /// [`request_timeout`](Self::request_timeout) also cancels its
    /// in-flight computation (typed `cancelled` op error, `cancelled_work`
    /// metric) instead of letting it run to completion unobserved.
    pub cancel_on_timeout: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            handlers: 4,
            workers_per_circuit: 2,
            queue_capacity: 64,
            request_timeout: Duration::from_secs(120),
            max_line_bytes: 4 << 20,
            log_every: None,
            max_circuits: 0,
            cancel_on_timeout: true,
        }
    }
}

/// State shared by every server thread.
struct Shared {
    metrics: Arc<Metrics>,
    registry: Registry,
    shutdown: AtomicBool,
    request_timeout: Duration,
    max_line_bytes: usize,
}

impl Shared {
    /// Routes one parsed request, returning the reply line.
    fn handle_request(&self, req: Request) -> (bool, String) {
        let Request { id, op, timing } = req;
        let endpoint = op.endpoint();
        match op {
            Op::Submit {
                format,
                name,
                text,
                builtin,
            } => {
                let outcome = match (&text, &builtin) {
                    (Some(text), None) => self.registry.submit_text(&format, name.as_deref(), text),
                    (None, Some(builtin)) => self.registry.submit_builtin(builtin),
                    // parse_request guarantees exactly one source.
                    _ => unreachable!("submit with no source"),
                };
                match outcome {
                    Ok(out) => {
                        let e = &out.entry;
                        (
                            true,
                            ok_line(
                                &id,
                                Json::obj(vec![
                                    ("circuit", Json::str(&e.hash)),
                                    ("name", Json::str(&e.name)),
                                    ("inputs", Json::Num(e.inputs as f64)),
                                    ("outputs", Json::Num(e.outputs as f64)),
                                    ("gates", Json::Num(e.gates as f64)),
                                    ("cached", Json::Bool(out.cached)),
                                ]),
                            ),
                        )
                    }
                    Err(e) => (false, err_line(&id, &e)),
                }
            }
            Op::Circuit { hash, op } => {
                match self
                    .registry
                    .dispatch(&hash, vec![op], self.request_timeout)
                {
                    Ok(mut outcome) => {
                        self.metrics.record_phases(
                            endpoint,
                            outcome.timing.queue_wait_us,
                            outcome.timing.compute_us,
                        );
                        match outcome.results.pop().expect("one result per op") {
                            Ok(result) if timing => {
                                (true, ok_line_timed(&id, result, outcome.timing.to_json()))
                            }
                            Ok(result) => (true, ok_line(&id, result)),
                            Err(e) => (false, err_line(&id, &e)),
                        }
                    }
                    Err(e) => (false, err_line(&id, &e)),
                }
            }
            Op::Batch { hash, ops } => {
                match self.registry.dispatch(&hash, ops, self.request_timeout) {
                    Ok(outcome) => {
                        self.metrics.record_phases(
                            endpoint,
                            outcome.timing.queue_wait_us,
                            outcome.timing.compute_us,
                        );
                        let results = Json::Arr(
                            outcome
                                .results
                                .into_iter()
                                .map(|r| match r {
                                    Ok(result) => Json::obj(vec![
                                        ("ok", Json::Bool(true)),
                                        ("result", result),
                                    ]),
                                    Err(e) => {
                                        let line = err_line(&Json::Null, &e);
                                        let parsed =
                                            Json::parse(&line).expect("err_line is valid JSON");
                                        Json::obj(vec![
                                            ("ok", Json::Bool(false)),
                                            (
                                                "error",
                                                parsed.get("error").cloned().unwrap_or(Json::Null),
                                            ),
                                        ])
                                    }
                                })
                                .collect(),
                        );
                        let body = Json::obj(vec![("results", results)]);
                        if timing {
                            (true, ok_line_timed(&id, body, outcome.timing.to_json()))
                        } else {
                            (true, ok_line(&id, body))
                        }
                    }
                    Err(e) => (false, err_line(&id, &e)),
                }
            }
            Op::Stats => {
                self.registry.refresh_gauges();
                (true, ok_line(&id, self.metrics.snapshot()))
            }
            Op::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                (
                    true,
                    ok_line(&id, Json::obj(vec![("draining", Json::Bool(true))])),
                )
            }
        }
    }

    /// Parses, routes and meters one request line.
    fn handle_line(&self, line: &str) -> String {
        let start = Instant::now();
        let parsed = {
            let _t = protest_telemetry::span(protest_telemetry::Site::ServeRead);
            parse_request(line)
        };
        match parsed {
            Ok(req) => {
                let endpoint = req.op.endpoint();
                let (ok, reply) = self.handle_request(req);
                self.metrics
                    .record(endpoint, ok, start.elapsed().as_micros() as u64);
                reply
            }
            Err((id, e)) => {
                self.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                let endpoint = match e.kind {
                    ErrorKind::Parse => Endpoint::Submit,
                    _ => Endpoint::Submit,
                };
                // Malformed lines have no endpoint; meter them under
                // submit's error column so they show up in totals.
                self.metrics
                    .record(endpoint, false, start.elapsed().as_micros() as u64);
                err_line(&id, &e)
            }
        }
    }
}

/// Serves one connection until the peer closes, an I/O error occurs, or
/// the server drains.
fn handle_conn(shared: &Shared, stream: TcpStream) {
    shared.metrics.conns_opened.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut chunk = [0u8; 8192];
    let mut line: Vec<u8> = Vec::new();
    let mut discarding = false;
    'conn: loop {
        match (&stream).read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                for &byte in &chunk[..n] {
                    if discarding {
                        if byte == b'\n' {
                            discarding = false;
                            shared.metrics.oversized.fetch_add(1, Ordering::Relaxed);
                            let e = WireError::new(
                                ErrorKind::Oversized,
                                format!("request line exceeds {} bytes", shared.max_line_bytes),
                            );
                            if write_line(&stream, &err_line(&Json::Null, &e)).is_err() {
                                break 'conn;
                            }
                        }
                        continue;
                    }
                    if byte == b'\n' {
                        let text = String::from_utf8_lossy(&line);
                        let trimmed = text.trim();
                        if !trimmed.is_empty() {
                            let reply = shared.handle_line(trimmed);
                            if write_line(&stream, &reply).is_err() {
                                break 'conn;
                            }
                        }
                        line.clear();
                    } else {
                        line.push(byte);
                        if line.len() > shared.max_line_bytes {
                            line.clear();
                            line.shrink_to_fit();
                            discarding = true;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle between requests: close once the server is draining.
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    shared.metrics.conns_closed.fetch_add(1, Ordering::Relaxed);
}

fn write_line(mut stream: &TcpStream, reply: &str) -> std::io::Result<()> {
    stream.write_all(reply.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// A running server: its bound address plus the handles to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound address (port is concrete even when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared metrics hub.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Whether a drain has been requested (via [`Self::shutdown`] or a
    /// `shutdown` request over the wire).
    pub fn draining(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain and waits for it to finish.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.wait();
    }

    /// Waits until the server has fully drained: accept loop stopped,
    /// in-flight requests answered, circuit hosts joined. Returns
    /// immediately on a second call.
    pub fn wait(&self) {
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.threads.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        self.shared.registry.shutdown();
    }
}

/// Binds and starts the daemon. Returns once the listener is live; all
/// serving happens on background threads until [`ServerHandle::shutdown`]
/// (or a `shutdown` request followed by [`ServerHandle::wait`]).
pub fn serve(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let metrics = Arc::new(Metrics::default());
    let registry = Registry::new(
        Arc::clone(&metrics),
        config.workers_per_circuit,
        config.queue_capacity,
        config.max_circuits,
        config.cancel_on_timeout,
    );
    let shared = Arc::new(Shared {
        metrics,
        registry,
        shutdown: AtomicBool::new(false),
        request_timeout: config.request_timeout,
        max_line_bytes: config.max_line_bytes,
    });

    let handlers = config.handlers.max(1);
    let conns: Arc<Bounded<TcpStream>> = Arc::new(Bounded::new(handlers * 2));
    let mut threads = Vec::with_capacity(handlers + 2);

    // Accept thread: poll accept + shutdown flag; close the connection
    // queue on exit so handlers drain and stop.
    {
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        threads.push(
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || {
                    loop {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if conns.push_blocking(stream).is_err() {
                                    break;
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(20));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(20)),
                        }
                    }
                    conns.close();
                })?,
        );
    }

    // Handler threads.
    for i in 0..handlers {
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        threads.push(
            std::thread::Builder::new()
                .name(format!("serve-handler-{i}"))
                .spawn(move || {
                    while let Some(stream) = conns.pop() {
                        handle_conn(&shared, stream);
                    }
                })?,
        );
    }

    // Supervisor: restart crashed circuit hosts until the drain begins.
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("serve-supervisor".to_string())
                .spawn(move || {
                    while !shared.shutdown.load(Ordering::SeqCst) {
                        shared.registry.supervise();
                        std::thread::sleep(Duration::from_millis(50));
                    }
                })?,
        );
    }

    // Optional periodic stats logger.
    if let Some(every) = config.log_every {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("serve-stats".to_string())
                .spawn(move || {
                    let mut last = Instant::now();
                    while !shared.shutdown.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(100));
                        if last.elapsed() >= every {
                            shared.registry.refresh_gauges();
                            eprintln!("{}", shared.metrics.log_line());
                            last = Instant::now();
                        }
                    }
                })?,
        );
    }

    Ok(ServerHandle {
        addr,
        shared,
        threads: Mutex::new(threads),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> Json {
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        Json::parse(&reply).unwrap()
    }

    fn connect(handle: &ServerHandle) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    #[test]
    fn submit_analyze_stats_shutdown() {
        let handle = serve(ServeConfig::default()).unwrap();
        let (mut stream, mut reader) = connect(&handle);

        let r = roundtrip(
            &mut stream,
            &mut reader,
            r#"{"id":1,"op":"submit","builtin":"c17"}"#,
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        let hash = r
            .get("result")
            .and_then(|v| v.get("circuit"))
            .and_then(Json::as_str)
            .unwrap()
            .to_string();

        let r = roundtrip(
            &mut stream,
            &mut reader,
            &format!(r#"{{"id":2,"op":"analyze","circuit":"{hash}","hardest":2}}"#),
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert!(r
            .get("result")
            .and_then(|v| v.get("detect_probs"))
            .and_then(Json::as_arr)
            .is_some());

        // Opt-in timing flag: the reply gains a sibling phase breakdown.
        let r = roundtrip(
            &mut stream,
            &mut reader,
            &format!(r#"{{"id":21,"op":"analyze","circuit":"{hash}","timing":true}}"#),
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        let t = r.get("timing").expect("timing object on timed reply");
        assert!(t.get("queue_wait_us").unwrap().as_u64().is_some());
        assert!(t.get("checkout_us").unwrap().as_u64().is_some());
        assert!(t.get("compute_us").unwrap().as_u64().is_some());

        let r = roundtrip(&mut stream, &mut reader, r#"{"id":3,"op":"stats"}"#);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        let analyze = r
            .get("result")
            .and_then(|v| v.get("endpoints"))
            .and_then(|v| v.get("analyze"))
            .expect("analyze endpoint in stats");
        assert!(
            analyze.get("queue_wait_p50_us").is_some(),
            "stats must report the queue-wait vs compute phase split"
        );
        assert!(analyze.get("compute_p99_us").is_some());

        let r = roundtrip(&mut stream, &mut reader, r#"{"id":4,"op":"shutdown"}"#);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        drop(stream);
        handle.wait();
    }

    #[test]
    fn malformed_lines_keep_the_connection_alive() {
        let handle = serve(ServeConfig {
            max_line_bytes: 1024,
            ..ServeConfig::default()
        })
        .unwrap();
        let (mut stream, mut reader) = connect(&handle);

        let r = roundtrip(&mut stream, &mut reader, "{this is not json");
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        let kind = r
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert_eq!(kind, "parse");

        // Oversized line: discarded, typed reply, connection still fine.
        let big = format!("{{\"op\":\"submit\",\"text\":\"{}\"}}", "x".repeat(4096));
        let r = roundtrip(&mut stream, &mut reader, &big);
        assert_eq!(
            r.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("oversized")
        );

        let r = roundtrip(
            &mut stream,
            &mut reader,
            r#"{"id":9,"op":"submit","builtin":"c17"}"#,
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));

        drop(stream);
        handle.shutdown();
    }
}
