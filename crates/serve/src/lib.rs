//! Analysis-as-a-service: a long-running daemon serving PROTEST
//! testability analysis over TCP.
//!
//! The cost profile of probabilistic testability analysis is front-loaded:
//! parsing the netlist, building the [`Analyzer`](protest_core::Analyzer)
//! (fault collapsing, AIG construction, levelization) and the first full
//! estimation pass dwarf any individual query. A CLI pays that price on
//! every invocation; a daemon pays it **once per circuit** and then
//! answers queries from warm state. This crate provides that daemon:
//!
//! * a **content-hash registry** — identical netlist text maps to one
//!   parsed circuit and one built analyzer, shared by all clients
//!   ([`registry`]);
//! * **warm session pools** — incremental
//!   [`AnalysisSession`](protest_core::AnalysisSession)s checked out per
//!   request and re-synced on return, so repeat queries pay only the
//!   dirty-cone cost ([`protest_core::SessionPool`]);
//! * a **bounded worker model** — accept thread, N request handlers,
//!   per-circuit worker threads behind bounded queues; overload sheds
//!   typed `busy` replies instead of queueing unboundedly ([`server`]);
//! * **observability** — per-endpoint p50/p99 latency with a queue-wait
//!   vs compute phase split, cache hit rates, pool and queue gauges via
//!   the `stats` endpoint and an optional periodic log line ([`metrics`]);
//!   plus span-level tracing of the full request lifecycle through the
//!   shared `protest_telemetry` crate (read → queue-wait → session
//!   checkout → compute → serialize), off by default and free when off;
//! * **robustness** — request deadlines cooperatively cancel in-flight
//!   analysis, worker panics become typed `internal` replies with the
//!   session discarded, a supervisor respawns crashed circuit hosts, and
//!   an optional capacity cap evicts idle hosts LRU-first ([`registry`]).
//!
//! # Wire protocol
//!
//! Newline-delimited JSON over TCP: one request per line, one reply per
//! line, replies carry the client's `id` back verbatim (pipelining works
//! because replies come in request order per connection). No TLS, no
//! auth — this is a trusted-network analysis service, not an internet
//! endpoint.
//!
//! Every reply is `{"id":…,"ok":true,"result":{…}}` or
//! `{"id":…,"ok":false,"error":{"kind":…,"message":…}}`, where `kind` is
//! one of `parse`, `protocol`, `netlist`, `not_found`, `busy`, `timeout`,
//! `oversized`, `analysis`, `shutting_down`, `cancelled`, `internal`.
//! Malformed or oversized input never kills the connection (framing
//! resynchronizes at the next newline) and never takes the daemon down.
//!
//! The two robustness kinds deserve a word:
//!
//! * **`cancelled`** — the request's deadline elapsed and its in-flight
//!   analysis was *cooperatively stopped* at the engine's next poll point
//!   (`cancelled_work` in `stats`). The plain `timeout` kind still
//!   appears on the outer request when the client-side wait gives up;
//!   `cancelled` is what an individual op inside a batch reports once the
//!   cancellation reached the math.
//! * **`internal`** — the daemon failed, not the request. Either a worker
//!   panicked while executing the request (the panic is caught, the
//!   worker's warm session is discarded instead of returned to the pool —
//!   `sessions_discarded` — and the daemon keeps serving), or the
//!   circuit's host thread died outright and dropped the request
//!   unanswered. A dead host is respawned by a supervisor within ~100 ms
//!   (`host_restarts`); jobs still queued at crash time survive the
//!   restart, and a retry of the dropped request succeeds once the fresh
//!   host is up.
//!
//! ## Endpoints
//!
//! **`submit`** registers a netlist (BENCH or PDL text, or a built-in by
//! name) and returns its content hash — the key every other endpoint
//! addresses the circuit by. Submitting the same text again is a cache
//! hit: no parse, no build.
//!
//! ```text
//! → {"id":1,"op":"submit","format":"bench","name":"c17","text":"INPUT(a)\n…"}
//! ← {"id":1,"ok":true,"result":{"circuit":"8c52…d1","name":"c17","inputs":5,"outputs":2,"gates":6,"cached":false}}
//! → {"id":2,"op":"submit","builtin":"comp24"}
//! ← {"id":2,"ok":true,"result":{"circuit":"builtin:comp24","name":"comp24","inputs":48,"outputs":3,"gates":103,"cached":false}}
//! ```
//!
//! **`analyze`** evaluates one input-probability vector: detection
//! probabilities per collapsed fault, optional signal probabilities,
//! test lengths `N(d, e)`, the hardest faults.
//!
//! ```text
//! → {"id":3,"op":"analyze","circuit":"builtin:comp24","prob":0.5,"testlen":[[1.0,0.95]],"hardest":2}
//! ← {"id":3,"ok":true,"result":{"circuit":"comp24","inputs":48,"faults":252,"detect_probs":[…],"testlen":[{"d":1,"e":0.95,"patterns":7106}],"hardest":[{"fault":"i37/H sa1","detection":0.0016,…},…]}}
//! ```
//!
//! **`optimize`** runs the Sec. 6 hill climber; **`tpi`** ranks or
//! commits test points; **`check`** runs the static lint / collapse /
//! redundancy report; **`simulate`** runs weighted-random fault
//! simulation:
//!
//! ```text
//! → {"id":4,"op":"optimize","circuit":"builtin:comp24","n_target":2000,"seed":1}
//! ← {"id":4,"ok":true,"result":{"probs":[…],"rounds":3,"evaluations":1289,"testlen":[…]}}
//! → {"id":5,"op":"simulate","circuit":"builtin:comp24","prob":0.5,"patterns":4096,"seed":7}
//! ← {"id":5,"ok":true,"result":{"total_faults":252,"detected":244,"coverage_percent":96.83}}
//! ```
//!
//! **`batch`** runs several of the above on ONE warm session checkout —
//! the cheapest way to sweep probability vectors:
//!
//! ```text
//! → {"id":6,"op":"batch","circuit":"builtin:comp24","requests":[{"op":"analyze","prob":0.4},{"op":"analyze","prob":0.45}]}
//! ← {"id":6,"ok":true,"result":{"results":[{"ok":true,"result":{…}},{"ok":true,"result":{…}}]}}
//! ```
//!
//! ## The `timing` flag
//!
//! Any circuit op (or `batch`) may set `"timing": true` to get the
//! daemon-side phase split of its own request echoed in the success
//! reply as a sibling `timing` object — microseconds spent waiting in
//! the circuit's job queue, checking a session out of the pool, and
//! actually computing:
//!
//! ```text
//! → {"id":9,"op":"analyze","circuit":"builtin:comp24","timing":true}
//! ← {"id":9,"ok":true,"result":{…},"timing":{"queue_wait_us":41,"checkout_us":3,"compute_us":5120}}
//! ```
//!
//! The flag is ignored on `submit`, `stats` and `shutdown` (they never
//! reach a circuit host, so there are no phases to report) and on error
//! replies. Omitting it leaves the reply byte-for-byte what it always
//! was, so existing clients are unaffected.
//!
//! **`stats`** returns the metrics snapshot; **`shutdown`** starts a
//! graceful drain (in-flight and queued requests still complete):
//!
//! ```text
//! → {"id":7,"op":"stats"}
//! ← {"id":7,"ok":true,"result":{"requests_total":6,"cache":{"hits":1,…},"endpoints":{…},…}}
//! → {"id":8,"op":"shutdown"}
//! ← {"id":8,"ok":true,"result":{"draining":true}}
//! ```
//!
//! # Fidelity
//!
//! Served results are **bit-identical** to the direct library API: the
//! JSON writer uses Rust's shortest-roundtrip float formatting, so every
//! `f64` survives serialize → parse with `to_bits` equality (proven by
//! the differential integration tests). The daemon adds caching and
//! transport, never approximation.
//!
//! # Example
//!
//! ```
//! use protest_serve::{serve, ServeConfig};
//! use std::io::{BufRead, BufReader, Write};
//!
//! let handle = serve(ServeConfig::default()).unwrap();
//! let mut conn = std::net::TcpStream::connect(handle.addr()).unwrap();
//! let mut replies = BufReader::new(conn.try_clone().unwrap());
//!
//! conn.write_all(b"{\"id\":1,\"op\":\"submit\",\"builtin\":\"c17\"}\n").unwrap();
//! let mut reply = String::new();
//! replies.read_line(&mut reply).unwrap();
//! assert!(reply.contains("\"ok\":true"));
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod ops;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod server;

pub use json::Json;
pub use metrics::{Endpoint, Metrics};
pub use protocol::{ErrorKind, Request, WireError};
pub use registry::{JobOutcome, JobTiming, Registry};
pub use server::{serve, ServeConfig, ServerHandle};
