//! The wire protocol: request envelopes, typed errors, reply framing.
//!
//! One request per line, one reply per line (see the crate docs for the
//! full endpoint reference). This module only converts between [`Json`]
//! trees and typed requests — execution lives in [`crate::ops`], routing
//! in [`crate::server`].

use crate::json::Json;
use crate::metrics::Endpoint;

/// Typed error categories, sent as `error.kind` so clients can branch
/// without parsing prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not valid JSON.
    Parse,
    /// The JSON was valid but not a valid request envelope.
    Protocol,
    /// A netlist failed to parse.
    Netlist,
    /// The referenced circuit hash is not registered.
    NotFound,
    /// The circuit's job queue is full — retry later.
    Busy,
    /// The request exceeded the per-request timeout.
    Timeout,
    /// The request line exceeded the size cap.
    Oversized,
    /// An analysis entry point rejected the parameters.
    Analysis,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// The request's deadline elapsed and its in-flight computation was
    /// cooperatively stopped (the cancellation actually reached the
    /// analysis loops — contrast with [`Timeout`](ErrorKind::Timeout),
    /// which only means the *client-side wait* gave up).
    Cancelled,
    /// The daemon failed, not the request: a worker panicked mid-job
    /// (the panicking worker's session is discarded, never returned to
    /// the pool, and the daemon keeps serving) or the circuit's host
    /// thread crashed and dropped the request unanswered (the
    /// supervisor respawns it). Either way the request is answered with
    /// this kind rather than left hanging, and a retry is safe.
    Internal,
}

impl ErrorKind {
    /// The wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Protocol => "protocol",
            ErrorKind::Netlist => "netlist",
            ErrorKind::NotFound => "not_found",
            ErrorKind::Busy => "busy",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Oversized => "oversized",
            ErrorKind::Analysis => "analysis",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A typed protocol error: category + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds an error.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        WireError {
            kind,
            message: message.into(),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str(self.kind.tag())),
            ("message", Json::str(&self.message)),
        ])
    }
}

/// How input probabilities are specified on circuit ops.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbSpec {
    /// Every input at probability `p` (`"prob": p`; default 0.5).
    Constant(f64),
    /// Explicit per-input vector (`"probs": [..]`).
    Explicit(Vec<f64>),
}

impl Default for ProbSpec {
    fn default() -> Self {
        ProbSpec::Constant(0.5)
    }
}

/// An operation executed against one registered circuit (single requests
/// and `batch` entries share this shape).
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitOp {
    /// Full testability analysis.
    Analyze {
        /// Input probabilities.
        probs: ProbSpec,
        /// `(d, e)` test-length targets.
        testlens: Vec<(f64, f64)>,
        /// How many least-testable faults to list (0 = none).
        hardest: usize,
        /// Include the full per-fault detection vector in the reply.
        detect_probs: bool,
        /// Include the per-node signal probability vector in the reply.
        signal_probs: bool,
    },
    /// Input-probability hill climb.
    Optimize {
        /// Objective parameter `N`.
        n_target: u64,
        /// Visiting-order seed.
        seed: u64,
        /// `(d, e)` targets evaluated at the optimum.
        testlens: Vec<(f64, f64)>,
    },
    /// Test-point insertion advisor.
    Tpi {
        /// Points to commit.
        budget: usize,
        /// Candidates surviving into full scoring.
        max_candidates: usize,
        /// Test-length fraction `d`.
        target_d: f64,
        /// Confidence `e`.
        target_e: f64,
        /// Rank only, commit nothing.
        dry_run: bool,
    },
    /// Static lint / collapse / redundancy report.
    Check {
        /// Run the BDD-backed redundancy prover.
        prove_redundant: bool,
        /// BDD node budget per proof.
        bdd_budget: usize,
    },
    /// Weighted-random fault simulation.
    Simulate {
        /// Input probabilities (weights).
        probs: ProbSpec,
        /// Patterns to simulate.
        patterns: u64,
        /// RNG seed.
        seed: u64,
    },
}

impl CircuitOp {
    /// The endpoint this op is metered under.
    pub fn endpoint(&self) -> Endpoint {
        match self {
            CircuitOp::Analyze { .. } => Endpoint::Analyze,
            CircuitOp::Optimize { .. } => Endpoint::Optimize,
            CircuitOp::Tpi { .. } => Endpoint::Tpi,
            CircuitOp::Check { .. } => Endpoint::Check,
            CircuitOp::Simulate { .. } => Endpoint::Simulate,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Register a circuit (by netlist text or built-in name).
    Submit {
        /// `"bench"` (default) or `"pdl"`.
        format: String,
        /// Circuit name (defaults to the format name).
        name: Option<String>,
        /// Netlist text.
        text: Option<String>,
        /// Built-in circuit name (alternative to `text`).
        builtin: Option<String>,
    },
    /// One circuit op addressed by content hash.
    Circuit {
        /// The registry key returned by `submit`.
        hash: String,
        /// The operation.
        op: CircuitOp,
    },
    /// Several circuit ops over one session checkout.
    Batch {
        /// The registry key returned by `submit`.
        hash: String,
        /// The operations, answered in order.
        ops: Vec<CircuitOp>,
    },
    /// Server metrics snapshot.
    Stats,
    /// Begin graceful drain.
    Shutdown,
}

impl Op {
    /// The endpoint this request is metered under.
    pub fn endpoint(&self) -> Endpoint {
        match self {
            Op::Submit { .. } => Endpoint::Submit,
            Op::Circuit { op, .. } => op.endpoint(),
            Op::Batch { .. } => Endpoint::Batch,
            Op::Stats => Endpoint::Stats,
            Op::Shutdown => Endpoint::Shutdown,
        }
    }
}

/// A parsed request envelope: client-chosen id (echoed verbatim) + op.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The client's `id`, echoed in the reply (`null` when absent).
    pub id: Json,
    /// The operation.
    pub op: Op,
    /// The opt-in `"timing": true` request flag: when set on a circuit
    /// op (or `batch`), the success reply carries a sibling `timing`
    /// object — `{"queue_wait_us":…,"checkout_us":…,"compute_us":…}` —
    /// reporting how long the request waited in the job queue, how long
    /// the session checkout took, and how long the computation ran.
    /// Ignored on `submit`/`stats`/`shutdown` (nothing is queued) and on
    /// error replies.
    pub timing: bool,
}

fn bad(message: impl Into<String>) -> WireError {
    WireError::new(ErrorKind::Protocol, message)
}

fn prob_spec(obj: &Json) -> Result<ProbSpec, WireError> {
    if let Some(v) = obj.get("probs") {
        let arr = v.as_arr().ok_or_else(|| bad("`probs` must be an array"))?;
        let mut probs = Vec::with_capacity(arr.len());
        for p in arr {
            probs.push(
                p.as_f64()
                    .ok_or_else(|| bad("`probs` entries must be numbers"))?,
            );
        }
        return Ok(ProbSpec::Explicit(probs));
    }
    match obj.get("prob") {
        None => Ok(ProbSpec::default()),
        Some(p) => Ok(ProbSpec::Constant(
            p.as_f64().ok_or_else(|| bad("`prob` must be a number"))?,
        )),
    }
}

fn testlens(obj: &Json) -> Result<Vec<(f64, f64)>, WireError> {
    match obj.get("testlen") {
        None => Ok(vec![(1.0, 0.95), (0.98, 0.98)]),
        Some(v) => {
            let arr = v
                .as_arr()
                .ok_or_else(|| bad("`testlen` must be an array of [d, e] pairs"))?;
            let mut out = Vec::with_capacity(arr.len());
            for pair in arr {
                let pair = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| bad("`testlen` entries must be [d, e] pairs"))?;
                let d = pair[0]
                    .as_f64()
                    .ok_or_else(|| bad("`testlen` d must be a number"))?;
                let e = pair[1]
                    .as_f64()
                    .ok_or_else(|| bad("`testlen` e must be a number"))?;
                if !(0.0..=1.0).contains(&d) || !(0.0..1.0).contains(&e) {
                    return Err(bad("`testlen` targets need d in [0,1], e in [0,1)"));
                }
                out.push((d, e));
            }
            Ok(out)
        }
    }
}

fn u64_field(obj: &Json, key: &str, default: u64) -> Result<u64, WireError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| bad(format!("`{key}` must be a non-negative integer"))),
    }
}

fn usize_field(obj: &Json, key: &str, default: usize) -> Result<usize, WireError> {
    Ok(u64_field(obj, key, default as u64)? as usize)
}

fn f64_field(obj: &Json, key: &str, default: f64) -> Result<f64, WireError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| bad(format!("`{key}` must be a number"))),
    }
}

fn bool_field(obj: &Json, key: &str, default: bool) -> Result<bool, WireError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| bad(format!("`{key}` must be a boolean"))),
    }
}

fn hash_field(obj: &Json) -> Result<String, WireError> {
    obj.get("circuit")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad("`circuit` (the hash from submit) is required"))
}

/// Parses a circuit op from an object carrying an `"op"` tag.
fn circuit_op(obj: &Json) -> Result<CircuitOp, WireError> {
    let op = obj
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("`op` must be a string"))?;
    match op {
        "analyze" => Ok(CircuitOp::Analyze {
            probs: prob_spec(obj)?,
            testlens: testlens(obj)?,
            hardest: usize_field(obj, "hardest", 0)?,
            detect_probs: bool_field(obj, "detect_probs", true)?,
            signal_probs: bool_field(obj, "signal_probs", false)?,
        }),
        "optimize" => Ok(CircuitOp::Optimize {
            n_target: u64_field(obj, "n_target", 10_000)?,
            seed: u64_field(obj, "seed", 1)?,
            testlens: testlens(obj)?,
        }),
        "tpi" => Ok(CircuitOp::Tpi {
            budget: usize_field(obj, "budget", 1)?,
            max_candidates: usize_field(obj, "max_candidates", 32)?,
            target_d: f64_field(obj, "target_d", 1.0)?,
            target_e: f64_field(obj, "target_e", 0.98)?,
            dry_run: bool_field(obj, "dry_run", false)?,
        }),
        "check" => Ok(CircuitOp::Check {
            prove_redundant: bool_field(obj, "prove_redundant", false)?,
            bdd_budget: usize_field(obj, "bdd_budget", 200_000)?,
        }),
        "simulate" => Ok(CircuitOp::Simulate {
            probs: prob_spec(obj)?,
            patterns: u64_field(obj, "patterns", 1_000)?.max(1),
            seed: u64_field(obj, "seed", 1)?,
        }),
        other => Err(bad(format!("unknown op `{other}`"))),
    }
}

/// Maximum circuit ops per `batch` envelope.
pub const MAX_BATCH: usize = 256;

/// Parses one request line. On failure the client's `id` is still
/// recovered when the line was at least valid JSON, so the error reply
/// can be correlated.
pub fn parse_request(line: &str) -> Result<Request, (Json, WireError)> {
    let root = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return Err((
                Json::Null,
                WireError::new(ErrorKind::Parse, format!("invalid JSON: {e}")),
            ))
        }
    };
    let id = root.get("id").cloned().unwrap_or(Json::Null);
    let fail = |e: WireError| (id.clone(), e);
    if !matches!(root, Json::Obj(_)) {
        return Err(fail(bad("request must be a JSON object")));
    }
    let op_name = root
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| fail(bad("`op` must be a string")))?;
    let op = match op_name {
        "submit" => {
            let text = root.get("text").and_then(Json::as_str).map(str::to_string);
            let builtin = root
                .get("builtin")
                .and_then(Json::as_str)
                .map(str::to_string);
            if text.is_none() == builtin.is_none() {
                return Err(fail(bad("submit needs exactly one of `text` or `builtin`")));
            }
            let format = root
                .get("format")
                .and_then(Json::as_str)
                .unwrap_or("bench")
                .to_string();
            if format != "bench" && format != "pdl" {
                return Err(fail(bad("`format` must be \"bench\" or \"pdl\"")));
            }
            Op::Submit {
                format,
                name: root.get("name").and_then(Json::as_str).map(str::to_string),
                text,
                builtin,
            }
        }
        "stats" => Op::Stats,
        "shutdown" => Op::Shutdown,
        "batch" => {
            let hash = hash_field(&root).map_err(&fail)?;
            let entries = root
                .get("requests")
                .and_then(Json::as_arr)
                .ok_or_else(|| fail(bad("batch needs a `requests` array")))?;
            if entries.is_empty() || entries.len() > MAX_BATCH {
                return Err(fail(bad(format!(
                    "batch size must be 1..={MAX_BATCH}, got {}",
                    entries.len()
                ))));
            }
            let mut ops = Vec::with_capacity(entries.len());
            for entry in entries {
                ops.push(circuit_op(entry).map_err(&fail)?);
            }
            Op::Batch { hash, ops }
        }
        _ => Op::Circuit {
            hash: hash_field(&root).map_err(&fail)?,
            op: circuit_op(&root).map_err(&fail)?,
        },
    };
    let timing = bool_field(&root, "timing", false).map_err(&fail)?;
    Ok(Request { id, op, timing })
}

/// Serializes a success reply line (no trailing newline).
pub fn ok_line(id: &Json, result: Json) -> String {
    let _t = protest_telemetry::span(protest_telemetry::Site::ServeSerialize);
    Json::obj(vec![
        ("id", id.clone()),
        ("ok", Json::Bool(true)),
        ("result", result),
    ])
    .to_line()
}

/// Serializes a success reply line carrying the opt-in `timing` object
/// (see [`Request::timing`]).
pub fn ok_line_timed(id: &Json, result: Json, timing: Json) -> String {
    let _t = protest_telemetry::span(protest_telemetry::Site::ServeSerialize);
    Json::obj(vec![
        ("id", id.clone()),
        ("ok", Json::Bool(true)),
        ("result", result),
        ("timing", timing),
    ])
    .to_line()
}

/// Serializes an error reply line (no trailing newline).
pub fn err_line(id: &Json, error: &WireError) -> String {
    let _t = protest_telemetry::span(protest_telemetry::Site::ServeSerialize);
    Json::obj(vec![
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        ("error", error.to_json()),
    ])
    .to_line()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_submit_and_analyze() {
        let r = parse_request(r#"{"id":1,"op":"submit","text":"INPUT(a)\nOUTPUT(a)"}"#).unwrap();
        assert_eq!(r.id.as_u64(), Some(1));
        assert!(matches!(r.op, Op::Submit { .. }));

        let r = parse_request(
            r#"{"id":"x","op":"analyze","circuit":"abc","prob":0.25,"testlen":[[1.0,0.95]],"hardest":5}"#,
        )
        .unwrap();
        match r.op {
            Op::Circuit {
                hash,
                op:
                    CircuitOp::Analyze {
                        probs,
                        testlens,
                        hardest,
                        detect_probs,
                        signal_probs,
                    },
            } => {
                assert_eq!(hash, "abc");
                assert_eq!(probs, ProbSpec::Constant(0.25));
                assert_eq!(testlens, vec![(1.0, 0.95)]);
                assert_eq!(hardest, 5);
                assert!(detect_probs);
                assert!(!signal_probs);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_batch() {
        let r = parse_request(
            r#"{"id":2,"op":"batch","circuit":"h","requests":[{"op":"analyze"},{"op":"simulate","patterns":64}]}"#,
        )
        .unwrap();
        match r.op {
            Op::Batch { hash, ops } => {
                assert_eq!(hash, "h");
                assert_eq!(ops.len(), 2);
                assert!(matches!(ops[1], CircuitOp::Simulate { patterns: 64, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn recovers_id_from_bad_envelope() {
        let (id, err) = parse_request(r#"{"id":42,"op":"frobnicate","circuit":"h"}"#).unwrap_err();
        assert_eq!(id.as_u64(), Some(42));
        assert_eq!(err.kind, ErrorKind::Protocol);

        let (id, err) = parse_request("not json at all").unwrap_err();
        assert_eq!(id, Json::Null);
        assert_eq!(err.kind, ErrorKind::Parse);
    }

    #[test]
    fn submit_requires_exactly_one_source() {
        assert!(parse_request(r#"{"op":"submit"}"#).is_err());
        assert!(parse_request(r#"{"op":"submit","text":"x","builtin":"c17"}"#).is_err());
        assert!(parse_request(r#"{"op":"submit","builtin":"c17"}"#).is_ok());
    }

    #[test]
    fn reply_lines_are_single_lines() {
        let ok = ok_line(&Json::Num(1.0), Json::obj(vec![("x", Json::str("a\nb"))]));
        assert!(!ok.contains('\n'));
        let err = err_line(&Json::Null, &WireError::new(ErrorKind::Busy, "queue full"));
        assert!(err.contains("\"busy\""));
        assert!(!err.contains('\n'));
    }
}
