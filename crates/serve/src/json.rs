//! A minimal JSON tree: parser and single-line writer.
//!
//! The wire protocol is newline-delimited JSON and the build environment
//! has no crates.io access, so the daemon carries its own ~300-line JSON
//! implementation instead of serde. Two properties matter for the
//! protocol:
//!
//! * **Float round-tripping** — numbers are written with Rust's
//!   shortest-round-trip `Display`, so an `f64` parsed back from a reply
//!   is bit-identical to the value the server computed. The differential
//!   tests (served vs direct library results) rely on this.
//! * **Single-line output** — [`Json::to_line`] never emits a newline
//!   (strings escape control characters), so any value is a valid
//!   protocol frame.
//!
//! The parser is a plain recursive-descent walk with a depth cap; a
//! malformed or absurdly nested request fails with a message, never a
//! panic or stack overflow.

use std::fmt;

/// Maximum nesting depth the parser accepts — far beyond any legitimate
/// request, small enough that recursion cannot exhaust the stack.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integers; `f64` holds every
    /// integer up to 2⁵³ exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key → value list (preserves insertion
    /// order; lookups are linear, fine at protocol sizes).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number in
    /// `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a single line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

/// Writes a number: whole values in integer form (so request ids and
/// counts round-trip textually), others with shortest-round-trip `Display`.
/// Non-finite values have no JSON form and become `null`.
fn write_num(n: f64, out: &mut String) {
    use fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'t> {
    bytes: &'t [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(what))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| self.error("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.error("control character in string")),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the bytes
                    // are valid — copy the full sequence.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.error("truncated UTF-8 sequence"));
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.error("invalid UTF-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.error("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_structures() {
        let text = r#"{"id":7,"op":"analyze","probs":[0.5,0.125],"nested":{"a":[true,false,null]},"s":"a\n\"b\"\\"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("op").unwrap().as_str(), Some("analyze"));
        let reprinted = v.to_line();
        assert_eq!(Json::parse(&reprinted).unwrap(), v);
        assert!(!reprinted.contains('\n'));
    }

    #[test]
    fn floats_roundtrip_bit_identically() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            6.7e-11,
            1.4918e-8,
            f64::MIN_POSITIVE,
            123456789.123456,
            2f64.powi(60),
        ] {
            let line = Json::Num(x).to_line();
            let back = Json::parse(&line).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {line}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_line(), "42");
        assert_eq!(Json::Num(-3.0).to_line(), "-3");
        assert_eq!(Json::Num(0.5).to_line(), "0.5");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "\"\\q\"",
            "01x",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_is_capped() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let v = Json::parse("\"caf\\u00e9 — ☃\"").unwrap();
        assert_eq!(v.as_str(), Some("café — ☃"));
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }
}
