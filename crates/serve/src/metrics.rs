//! Server observability: request counters, per-endpoint latency
//! histograms (p50/p99), cache and session gauges, queue depth.
//!
//! Everything is lock-free atomics so the hot path records a latency in a
//! few nanoseconds. Latencies go into the shared log₂-bucketed
//! [`Histogram`] from `protest_telemetry` (bucket `i` covers
//! `[2^i, 2^(i+1))` microseconds); quantiles interpolate linearly inside
//! the winning bucket, which is plenty for p50/p99 on a load test. Each
//! endpoint tracks the end-to-end latency plus a queue-wait vs compute
//! phase split fed from [`crate::registry::JobTiming`]. The same snapshot
//! feeds the `stats` endpoint and the periodic log line.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

pub use protest_telemetry::Histogram;

use crate::json::Json;

/// The protocol endpoints, used to index per-endpoint metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `submit` — register (or look up) a circuit.
    Submit,
    /// `analyze` — signal/detection probabilities + test lengths.
    Analyze,
    /// `optimize` — input-probability hill climb.
    Optimize,
    /// `tpi` — test-point insertion advisor.
    Tpi,
    /// `check` — static lint/collapse/redundancy report.
    Check,
    /// `simulate` — weighted-random fault simulation.
    Simulate,
    /// `stats` — this snapshot.
    Stats,
    /// `batch` — several circuit ops amortized over one session checkout.
    Batch,
    /// `shutdown` — graceful drain.
    Shutdown,
}

/// All endpoints, aligned with the metrics array.
pub const ENDPOINTS: [Endpoint; 9] = [
    Endpoint::Submit,
    Endpoint::Analyze,
    Endpoint::Optimize,
    Endpoint::Tpi,
    Endpoint::Check,
    Endpoint::Simulate,
    Endpoint::Stats,
    Endpoint::Batch,
    Endpoint::Shutdown,
];

impl Endpoint {
    /// The wire name (also the metrics key).
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Submit => "submit",
            Endpoint::Analyze => "analyze",
            Endpoint::Optimize => "optimize",
            Endpoint::Tpi => "tpi",
            Endpoint::Check => "check",
            Endpoint::Simulate => "simulate",
            Endpoint::Stats => "stats",
            Endpoint::Batch => "batch",
            Endpoint::Shutdown => "shutdown",
        }
    }

    fn index(self) -> usize {
        ENDPOINTS.iter().position(|&e| e == self).unwrap()
    }
}

/// Per-endpoint counters.
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    /// Requests that produced an `ok` reply.
    pub ok: AtomicU64,
    /// Requests that produced an error reply.
    pub errors: AtomicU64,
    /// End-to-end handler latency (parse → reply written).
    pub latency: Histogram,
    /// Job queue-wait phase (enqueue → worker pop); only requests that
    /// reached a circuit host record here.
    pub queue_wait: Histogram,
    /// Job compute phase (ops executing against a checked-out session).
    pub compute: Histogram,
}

/// The server-wide metrics hub, shared by every thread.
#[derive(Debug)]
pub struct Metrics {
    endpoints: [EndpointMetrics; ENDPOINTS.len()],
    /// `submit`s answered from the content-hash registry.
    pub cache_hits: AtomicU64,
    /// `submit`s that had to parse and build a new circuit entry.
    pub cache_misses: AtomicU64,
    /// Requests rejected because a line exceeded the size cap.
    pub oversized: AtomicU64,
    /// Requests rejected as malformed (bad JSON / bad envelope).
    pub malformed: AtomicU64,
    /// Requests that hit the per-request timeout.
    pub timeouts: AtomicU64,
    /// Requests shed because a job queue was full.
    pub busy: AtomicU64,
    /// Connections accepted / finished.
    pub conns_opened: AtomicU64,
    /// Connections closed.
    pub conns_closed: AtomicU64,
    /// Jobs currently queued across all circuits.
    pub queue_depth: AtomicU64,
    /// Live (checked-out) sessions across all pools.
    pub sessions_live: AtomicU64,
    /// Idle warm sessions across all pools.
    pub sessions_idle: AtomicU64,
    /// Pool checkouts served warm.
    pub session_warm_hits: AtomicU64,
    /// Pool checkouts that cold-cloned.
    pub session_cold_clones: AtomicU64,
    /// Registered circuits.
    pub circuits: AtomicU64,
    /// Requests whose in-flight computation was cooperatively stopped
    /// after the deadline fired (the work actually ceased, not just the
    /// client-side wait).
    pub cancelled_work: AtomicU64,
    /// Worker panics caught and converted into `internal` error replies.
    pub worker_panics: AtomicU64,
    /// Dead circuit-host threads restarted by the supervisor.
    pub host_restarts: AtomicU64,
    /// Idle circuit hosts evicted to respect the registry capacity cap.
    pub evictions: AtomicU64,
    /// Sessions discarded instead of returned to a pool (poisoned by a
    /// mid-update cancel, or abandoned during a panic unwind).
    pub sessions_discarded: AtomicU64,
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            endpoints: std::array::from_fn(|_| EndpointMetrics::default()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            oversized: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            conns_opened: AtomicU64::new(0),
            conns_closed: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            sessions_live: AtomicU64::new(0),
            sessions_idle: AtomicU64::new(0),
            session_warm_hits: AtomicU64::new(0),
            session_cold_clones: AtomicU64::new(0),
            circuits: AtomicU64::new(0),
            cancelled_work: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            host_restarts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            sessions_discarded: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

impl Metrics {
    /// The counters of one endpoint.
    pub fn endpoint(&self, e: Endpoint) -> &EndpointMetrics {
        &self.endpoints[e.index()]
    }

    /// Records a finished request: outcome plus latency.
    pub fn record(&self, e: Endpoint, ok: bool, us: u64) {
        let m = self.endpoint(e);
        if ok {
            m.ok.fetch_add(1, Ordering::Relaxed);
        } else {
            m.errors.fetch_add(1, Ordering::Relaxed);
        }
        m.latency.record_us(us);
    }

    /// Records the phase split of a dispatched job: where its wall-clock
    /// went between sitting in the circuit's queue and actually computing.
    pub fn record_phases(&self, e: Endpoint, queue_wait_us: u64, compute_us: u64) {
        let m = self.endpoint(e);
        m.queue_wait.record_us(queue_wait_us);
        m.compute.record_us(compute_us);
    }

    /// Total requests answered (ok + error), every endpoint.
    pub fn requests_total(&self) -> u64 {
        self.endpoints
            .iter()
            .map(|m| m.ok.load(Ordering::Relaxed) + m.errors.load(Ordering::Relaxed))
            .sum()
    }

    /// The `stats` endpoint / log-line snapshot.
    pub fn snapshot(&self) -> Json {
        let mut per_endpoint = Vec::new();
        for e in ENDPOINTS {
            let m = self.endpoint(e);
            let ok = m.ok.load(Ordering::Relaxed);
            let errors = m.errors.load(Ordering::Relaxed);
            if ok + errors == 0 {
                continue;
            }
            let mut fields = vec![
                ("ok", Json::Num(ok as f64)),
                ("errors", Json::Num(errors as f64)),
                ("p50_us", Json::Num(m.latency.quantile_us(0.50) as f64)),
                ("p99_us", Json::Num(m.latency.quantile_us(0.99) as f64)),
                ("mean_us", Json::Num(m.latency.mean_us())),
            ];
            // Phase split, present only once a job has actually reached a
            // circuit host for this endpoint.
            if m.queue_wait.count() > 0 {
                fields.push((
                    "queue_wait_p50_us",
                    Json::Num(m.queue_wait.quantile_us(0.50) as f64),
                ));
                fields.push((
                    "queue_wait_p99_us",
                    Json::Num(m.queue_wait.quantile_us(0.99) as f64),
                ));
                fields.push((
                    "compute_p50_us",
                    Json::Num(m.compute.quantile_us(0.50) as f64),
                ));
                fields.push((
                    "compute_p99_us",
                    Json::Num(m.compute.quantile_us(0.99) as f64),
                ));
            }
            per_endpoint.push((e.name().to_string(), Json::obj(fields)));
        }
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let hit_rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        Json::obj(vec![
            ("uptime_s", Json::Num(self.started.elapsed().as_secs_f64())),
            ("requests_total", Json::Num(self.requests_total() as f64)),
            ("endpoints", Json::Obj(per_endpoint)),
            (
                "cache",
                Json::obj(vec![
                    (
                        "circuits",
                        Json::Num(self.circuits.load(Ordering::Relaxed) as f64),
                    ),
                    ("hits", Json::Num(hits as f64)),
                    ("misses", Json::Num(misses as f64)),
                    ("hit_rate", Json::Num(hit_rate)),
                ]),
            ),
            (
                "sessions",
                Json::obj(vec![
                    (
                        "live",
                        Json::Num(self.sessions_live.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "idle",
                        Json::Num(self.sessions_idle.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "warm_hits",
                        Json::Num(self.session_warm_hits.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "cold_clones",
                        Json::Num(self.session_cold_clones.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
            (
                "rejections",
                Json::obj(vec![
                    (
                        "oversized",
                        Json::Num(self.oversized.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "malformed",
                        Json::Num(self.malformed.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "timeouts",
                        Json::Num(self.timeouts.load(Ordering::Relaxed) as f64),
                    ),
                    ("busy", Json::Num(self.busy.load(Ordering::Relaxed) as f64)),
                ]),
            ),
            (
                "queue_depth",
                Json::Num(self.queue_depth.load(Ordering::Relaxed) as f64),
            ),
            (
                "connections",
                Json::obj(vec![
                    (
                        "opened",
                        Json::Num(self.conns_opened.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "closed",
                        Json::Num(self.conns_closed.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
            (
                "robustness",
                Json::obj(vec![
                    (
                        "cancelled_work",
                        Json::Num(self.cancelled_work.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "worker_panics",
                        Json::Num(self.worker_panics.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "host_restarts",
                        Json::Num(self.host_restarts.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "evictions",
                        Json::Num(self.evictions.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "sessions_discarded",
                        Json::Num(self.sessions_discarded.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
        ])
    }

    /// One human-readable line for the periodic log.
    pub fn log_line(&self) -> String {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let analyze = self.endpoint(Endpoint::Analyze);
        format!(
            "serve: {} reqs ({} conns, q={}) cache {}/{} hit sessions {} live/{} idle \
             analyze p50 {}us p99 {}us (qwait p50 {}us p99 {}us / compute p50 {}us p99 {}us)",
            self.requests_total(),
            self.conns_opened.load(Ordering::Relaxed),
            self.queue_depth.load(Ordering::Relaxed),
            hits,
            hits + misses,
            self.sessions_live.load(Ordering::Relaxed),
            self.sessions_idle.load(Ordering::Relaxed),
            analyze.latency.quantile_us(0.50),
            analyze.latency.quantile_us(0.99),
            analyze.queue_wait.quantile_us(0.50),
            analyze.queue_wait.quantile_us(0.99),
            analyze.compute.quantile_us(0.50),
            analyze.compute.quantile_us(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::default();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 10_000] {
            h.record_us(us);
        }
        let p50 = h.quantile_us(0.5);
        assert!((8..=128).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((8192..=16384).contains(&p99), "p99 = {p99}");
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn snapshot_reports_endpoints_and_cache() {
        let m = Metrics::default();
        m.record(Endpoint::Analyze, true, 120);
        m.record(Endpoint::Analyze, false, 80);
        m.cache_hits.fetch_add(9, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        let snap = m.snapshot();
        let analyze = snap.get("endpoints").unwrap().get("analyze").unwrap();
        assert_eq!(analyze.get("ok").unwrap().as_u64(), Some(1));
        assert_eq!(analyze.get("errors").unwrap().as_u64(), Some(1));
        let cache = snap.get("cache").unwrap();
        assert_eq!(cache.get("hit_rate").unwrap().as_f64(), Some(0.9));
        assert_eq!(snap.get("requests_total").unwrap().as_u64(), Some(2));
        assert!(!m.log_line().is_empty());
    }

    #[test]
    fn phase_split_appears_once_jobs_have_run() {
        let m = Metrics::default();
        m.record(Endpoint::Analyze, true, 500);
        let snap = m.snapshot();
        let analyze = snap.get("endpoints").unwrap().get("analyze").unwrap();
        assert!(
            analyze.get("queue_wait_p50_us").is_none(),
            "no phase fields before any job reached a host"
        );
        m.record_phases(Endpoint::Analyze, 40, 400);
        let snap = m.snapshot();
        let analyze = snap.get("endpoints").unwrap().get("analyze").unwrap();
        assert!(analyze.get("queue_wait_p50_us").unwrap().as_u64().is_some());
        assert!(analyze.get("queue_wait_p99_us").unwrap().as_u64().is_some());
        assert!(analyze.get("compute_p50_us").unwrap().as_u64().is_some());
        assert!(analyze.get("compute_p99_us").unwrap().as_u64().is_some());
        assert!(m.log_line().contains("qwait"));
    }
}
