//! The full PROTEST workflow on the paper's ALU (SN74181): signal
//! probabilities, fault-detection probabilities, least-testable faults,
//! required test lengths, and validation by fault simulation.
//!
//! ```sh
//! cargo run --release --example testability_report
//! ```

use protest::prelude::*;
use protest_core::report::TestabilityReport;
use protest_core::stats::pearson_correlation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = alu_74181();
    let analyzer = Analyzer::new(&circuit);
    let probs = InputProbs::uniform(circuit.num_inputs());
    let analysis = analyzer.run(&probs)?;

    let report = TestabilityReport::new(
        &analyzer,
        &analysis,
        &[(1.0, 0.95), (0.98, 0.98), (1.0, 0.999)],
        8,
    );
    println!("{report}");

    // Validate estimates against simulation, Table-1 style.
    let mut fsim = FaultSim::new(&circuit);
    let mut source = WeightedRandomPatterns::new(probs.as_slice(), 7);
    let counts = fsim.count_detections(analyzer.faults(), &mut source, 20_000);
    let p_prot = analysis.detection_probabilities();
    let p_sim = counts.probabilities();
    println!(
        "\ncorrelation of estimates with fault simulation over {} faults: {:.3}",
        p_prot.len(),
        pearson_correlation(&p_prot, &p_sim)
    );
    Ok(())
}
