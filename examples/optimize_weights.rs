//! Input-probability optimization on a random-pattern-resistant circuit
//! (the paper's Sec. 6 headline): the 24-bit comparator COMP needs ~10¹⁰
//! uniform random patterns, but only ~10⁴ weighted ones.
//!
//! ```sh
//! cargo run --release --example optimize_weights
//! ```

use protest::prelude::*;
use protest_core::testlen::required_test_length_fraction;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = comp24();
    let analyzer = Analyzer::new(&circuit);

    // One incremental session serves the whole example: the uniform
    // baseline, and the re-analysis at the optimized point.
    let mut session = analyzer.session(&InputProbs::uniform(circuit.num_inputs()))?;

    // Conventional random test at p = 0.5.
    let n_uniform = required_test_length_fraction(session.fault_detect_probs(), 1.0, 0.95);
    println!(
        "uniform patterns:   N = {}",
        n_uniform.map_or("unreachable".into(), |t| t.patterns.to_string())
    );

    // Hill-climb the per-input probabilities on the k/16 grid.
    let params = OptimizeParams {
        n_target: 10_000,
        ..OptimizeParams::default()
    };
    let result = HillClimber::new(&analyzer, params).optimize()?;
    println!(
        "optimization: {} rounds, {} evaluations",
        result.rounds, result.evaluations
    );
    for (i, (&id, p)) in circuit
        .inputs()
        .iter()
        .zip(result.probs.as_slice())
        .enumerate()
    {
        if (p - 0.5).abs() > 0.2 {
            print!("{}={:.2} ", circuit.node_label(id), p);
            if i % 8 == 7 {
                println!();
            }
        }
    }
    println!();

    // Move the session to the optimized point: only the cones of the
    // inputs whose probability actually moved are re-propagated.
    session.set_all(result.probs.as_slice())?;
    let n_opt = required_test_length_fraction(session.fault_detect_probs(), 1.0, 0.95);
    println!(
        "optimized patterns: N = {}",
        n_opt.map_or("unreachable".into(), |t| t.patterns.to_string())
    );

    // Validate by fault simulation with the weighted source.
    let mut source = WeightedRandomPatterns::new(result.probs.as_slice(), 3);
    let curve =
        protest_sim::coverage_run(&circuit, analyzer.faults(), &mut source, &[1000, 12_000]);
    println!(
        "fault simulation with optimized weights: {:.1}% @1000, {:.1}% @12000",
        curve.checkpoints[0].percent, curve.checkpoints[1].percent
    );
    Ok(())
}
