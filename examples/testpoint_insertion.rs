//! Test-point insertion: closing the analyze → modify → re-analyze loop.
//!
//! The advisor scores control/observation test-point candidates on the
//! current analysis state, commits the best ones by actually rewriting the
//! netlist, and validates every commit with a full re-analysis — here on
//! the paper's 24-bit comparator, whose equality chains are notoriously
//! random-pattern-resistant.
//!
//! ```sh
//! cargo run --release --example testpoint_insertion
//! ```

use protest::prelude::*;
use protest_circuits::comp24;
use protest_core::tpi::{advise, TpiParams};
use protest_netlist::to_bench;
use protest_sim::weighted_coverage;

fn main() {
    let circuit = comp24();
    println!(
        "circuit: {} ({} gates, {} inputs, {} outputs)",
        circuit.name(),
        circuit.num_gates(),
        circuit.num_inputs(),
        circuit.num_outputs()
    );

    let params = TpiParams {
        budget: 3,
        max_candidates: 64,
        ..TpiParams::default()
    };
    let result = advise(&circuit, &params).expect("advisor runs");

    println!(
        "base test length: N(d=1.00, e=0.98) = {}",
        result
            .base_patterns
            .map_or("unreachable".to_string(), |n| n.to_string())
    );
    for (i, step) in result.steps.iter().enumerate() {
        let fmt = |n: Option<u64>| n.map_or("unreachable".to_string(), |n| n.to_string());
        println!(
            "step {}: {} @ {:10}  predicted N = {:>10}  re-analyzed N = {:>10}  ({} candidates scored)",
            i + 1,
            step.spec.kind,
            step.label,
            fmt(step.predicted_patterns),
            fmt(step.realized_patterns),
            step.candidates_scored,
        );
    }

    // Ground truth beyond the analytic model: fault-simulate a fixed
    // random-pattern budget on both circuits.
    let patterns = 10_000;
    let before = {
        let analyzer = Analyzer::new(&circuit);
        let weights = vec![0.5; circuit.num_inputs()];
        weighted_coverage(&circuit, analyzer.faults(), &weights, 7, patterns)
    };
    let after = {
        let analyzer = Analyzer::new(&result.circuit);
        weighted_coverage(
            &result.circuit,
            analyzer.faults(),
            &result.weights,
            7,
            patterns,
        )
    };
    println!(
        "fault-sim cross-check @ {patterns} patterns: coverage {:.2}% -> {:.2}%",
        before.final_percent(),
        after.final_percent()
    );

    // The modified netlist is a real circuit: serialize it.
    let bench = to_bench(&result.circuit);
    println!(
        "modified netlist: {} lines of .bench ({} new inputs, {} new outputs)",
        bench.lines().count(),
        result.circuit.num_inputs() - circuit.num_inputs(),
        result.circuit.num_outputs() - circuit.num_outputs(),
    );
}
