//! Quickstart: build a small circuit, estimate its testability, compute a
//! test length, and cross-check with fault simulation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use protest::prelude::*;
use protest_core::report::TestabilityReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a circuit: a 4-bit "is this value in range [9, 12]?"
    //    detector with a deliberately hard-to-excite corner.
    let mut b = CircuitBuilder::new("range_detector");
    let xs = b.input_bus("x", 4);
    let ge9 = {
        // x ≥ 9 ⇔ x3 ∧ (x2 ∨ x1 ∨ x0 ≥ 1) — built explicitly.
        let low_or = b.or(&[xs[0], xs[1], xs[2]]);
        b.and2(xs[3], low_or)
    };
    let le12 = {
        // x ≤ 12 ⇔ ¬(x3 ∧ x2 ∧ (x1 ∨ x0))
        let t = b.or2(xs[0], xs[1]);
        let u = b.and(&[xs[3], xs[2], t]);
        b.not(u)
    };
    let in_range = b.and2(ge9, le12);
    b.output(in_range, "in_range");
    let circuit = b.finish()?;

    // 2. Analyze with uniform random inputs (p = 0.5 everywhere), through
    //    an incremental session so follow-up what-ifs are cheap.
    let analyzer = Analyzer::new(&circuit);
    let mut session = analyzer.session(&InputProbs::uniform(circuit.num_inputs()))?;

    println!(
        "signal probability of in_range: {:.4}",
        session.signal_prob(in_range)
    );
    println!("(exact value: P(9 ≤ x ≤ 12) = 4/16 = {:.4})\n", 4.0 / 16.0);

    // What-if: bias the top bit high. Only its fan-out cone is
    // re-propagated, not the whole circuit.
    session.set_input_prob(3, 0.9)?;
    println!(
        "with P(x3) = 0.9 the output rises to {:.4}\n",
        session.signal_prob(in_range)
    );
    session.set_input_prob(3, 0.5)?; // back to uniform
    let analysis = session.into_analysis();

    // 3. Print the standard testability report with test lengths.
    let report = TestabilityReport::new(&analyzer, &analysis, &[(1.0, 0.95), (1.0, 0.999)], 5);
    println!("{report}");

    // 4. Validate the test length by fault simulation, as the paper does.
    let n = analysis
        .required_test_length(1.0, 0.95)
        .expect("all faults detectable")
        .patterns;
    let mut source = UniformRandomPatterns::new(circuit.num_inputs(), 42);
    let curve = protest_sim::coverage_run(&circuit, analyzer.faults(), &mut source, &[n]);
    println!(
        "fault simulation of {} random patterns reaches {:.1}% coverage",
        n,
        curve.final_percent()
    );
    Ok(())
}
