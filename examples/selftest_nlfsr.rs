//! Self-test with weighted pattern generators (paper Sec. 8): PROTEST's
//! optimal probabilities drive an NLFSR-style weighted generator whose
//! responses compact into a MISR signature; the standard BILBO (uniform
//! LFSR) is the baseline.
//!
//! ```sh
//! cargo run --release --example selftest_nlfsr
//! ```

use protest::prelude::*;
use protest_tpg::selftest::run_self_test;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = comp24();
    let analyzer = Analyzer::new(&circuit);
    let faults = analyzer.faults().to_vec();
    let patterns = 8192;

    // Baseline: BILBO-style uniform pseudo-random patterns.
    let mut uniform = UniformRandomPatterns::new(circuit.num_inputs(), 11);
    let base = run_self_test(&circuit, &faults, &mut uniform, patterns, 16);
    println!(
        "BILBO baseline:   {} patterns, signature {:04x}, coverage {:.1}%",
        base.patterns,
        base.golden_signature,
        100.0 * base.coverage()
    );

    // PROTEST-optimized weights realized by the NLFSR tap-network model.
    let params = OptimizeParams {
        n_target: 10_000,
        ..OptimizeParams::default()
    };
    let result = HillClimber::new(&analyzer, params).optimize()?;
    let mut weighted = WeightedLfsrPatterns::new(result.probs.as_slice(), 4, 0xACE1);
    let nlfsr = run_self_test(&circuit, &faults, &mut weighted, patterns, 16);
    println!(
        "NLFSR (weighted): {} patterns, signature {:04x}, coverage {:.1}%",
        nlfsr.patterns,
        nlfsr.golden_signature,
        100.0 * nlfsr.coverage()
    );
    println!(
        "\n\"Such an NLFSR reaches a higher fault detection probability in \
         shorter test time\" — paper Sec. 8"
    );
    Ok(())
}
