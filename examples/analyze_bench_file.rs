//! Analyze a circuit from an ISCAS-85 `.bench` file (or the bundled c17).
//!
//! ```sh
//! cargo run --release --example analyze_bench_file [path/to/circuit.bench]
//! ```

use std::env;
use std::fs;

use protest::prelude::*;
use protest_core::report::TestabilityReport;
use protest_netlist::parse_bench;

const C17: &str = "\
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = match env::args().nth(1) {
        Some(path) => {
            let text = fs::read_to_string(&path)?;
            parse_bench(&path, &text)?
        }
        None => {
            println!("(no file given; analyzing the bundled c17)\n");
            parse_bench("c17", C17)?
        }
    };
    let analyzer = Analyzer::new(&circuit);
    let analysis = analyzer.run(&InputProbs::uniform(circuit.num_inputs()))?;
    let report = TestabilityReport::new(&analyzer, &analysis, &[(1.0, 0.95), (1.0, 0.999)], 10);
    println!("{report}");
    Ok(())
}
