//! Offline shim for the subset of the `criterion` 0.5 API used by the
//! PROTEST bench suite.
//!
//! The build environment cannot reach crates.io, so this crate provides a
//! minimal wall-clock harness with the same surface: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros. There is no
//! statistical analysis; each benchmark runs `sample_size` timed passes
//! (after one warm-up) and reports the median and min/max per iteration.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier — defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; `iter` times one sample.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up per benchmark (not per sample — for slow
        // routines that would double the wall-clock).
        if self.samples.is_empty() {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_samples(name: &str, sample_size: usize, mut pass: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    for _ in 0..sample_size {
        pass(&mut b);
    }
    if b.samples.is_empty() {
        println!("{name:<40} (no samples: bencher closure never called iter)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!(
        "{name:<40} median {:>12}   [{} .. {}]",
        format_duration(median),
        format_duration(lo),
        format_duration(hi),
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (upstream default is 100;
    /// this shim defaults to 10 to keep `cargo bench` quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_samples(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_samples(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_samples(&id.into_benchmark_id(), 10, &mut f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
