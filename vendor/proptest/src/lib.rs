//! Offline shim for the subset of the `proptest` 1.x API used by the
//! PROTEST property-test suites.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the pieces the workspace actually uses: the [`Strategy`] trait with
//! `prop_map` / `prop_recursive` / `boxed`, range and tuple strategies,
//! [`collection::vec`], [`BoxedStrategy`], weighted-choice via
//! [`prop_oneof!`], and the [`proptest!`] / `prop_assert*` macros.
//!
//! Semantics differ from upstream in two deliberate ways: there is no
//! shrinking (a failing case reports its inputs and panics), and case
//! generation is deterministic per test (seeded from the test name) so CI
//! runs are reproducible.

use std::rc::Rc;

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG handed to strategies while generating cases.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Per-block configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Stable FNV-1a hash of the test path, used as the per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type `Value`.
    ///
    /// Upstream proptest separates strategies from value trees to support
    /// shrinking; this shim collapses the two: a strategy simply produces
    /// a value from the test RNG.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Build recursive structures at most `depth` levels deep.
        ///
        /// `desired_size` and `expected_branch_size` are accepted for API
        /// compatibility but unused: depth alone bounds the structures,
        /// and each level chooses the leaf with probability 1/3.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut level = leaf.clone();
            for _ in 0..depth {
                let branch = f(level).boxed();
                level = OneOf::new(vec![leaf.clone(), branch.clone(), branch]).boxed();
            }
            level
        }
    }

    /// A cloneable, type-erased strategy (`Rc`-shared; tests are
    /// single-threaded per case so no `Send` is needed).
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice between alternatives, all erased to one value type.
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// A constant strategy (upstream `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as the length argument of [`vec`].
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    /// `proptest::collection::vec` — a vector whose length is drawn from
    /// `len` and whose elements are drawn from `elem`.
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

/// Generate a value of a type with a natural "uniform" strategy.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub trait Arbitrary {
    type Strategy: strategy::Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

struct StdArb<T>(fn(&mut test_runner::TestRng) -> T);

impl<T> strategy::Strategy for StdArb<T> {
    type Value = T;

    fn new_value(&self, rng: &mut test_runner::TestRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::BoxedStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                use strategy::Strategy as _;
                StdArb(|rng| rand::Standard::sample(rng)).boxed()
            }
        }
    )*};
}
impl_arbitrary_std!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, OneOf, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// Re-export so generated macro code can name the crate unambiguously.
#[doc(hidden)]
pub use test_runner::{seed_for, ProptestConfig, TestRng};

#[doc(hidden)]
pub fn __unused<T>(_: &T) {}

/// Marker so `Rc` is referenced from the crate root (silences the unused
/// import while keeping the module layout close to upstream).
#[doc(hidden)]
pub type __Shared<T> = Rc<T>;

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// `prop_oneof![s1, s2, ...]` — uniform choice among the arms. All arms
/// are boxed to a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The `proptest! { ... }` block: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions
/// whose arguments are drawn from strategies (`pat in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::ProptestConfig = $cfg;
            let strat = ($($strat,)+);
            let mut rng = $crate::TestRng::from_seed($crate::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for case in 0..config.cases {
                let ($($arg,)+) = strat.new_value(&mut rng);
                let repr = format!(concat!($("\n  ", stringify!($arg), " = {:?}",)+), $(&$arg,)+);
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || $body
                ));
                if let Err(cause) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed with inputs:{}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        repr
                    );
                    ::std::panic::resume_unwind(cause);
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_sample_in_bounds(x in 3u32..17, f in 0.25f64..=0.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..=0.5).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(0u8..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn tuples_and_map_compose(p in (0u8..4, 0u8..4).prop_map(|(a, b)| (a, b))) {
            prop_assert!(p.0 < 4 && p.1 < 4);
        }
    }

    #[derive(Debug, Clone)]
    enum Tree {
        Leaf,
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #[test]
        fn recursion_is_depth_bounded(
            t in (0usize..4).prop_map(|_| Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner)
                    .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            })
        ) {
            prop_assert!(depth(&t) <= 4);
        }
    }
}
