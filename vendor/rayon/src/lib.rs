//! Offline shim for the subset of the `rayon` 1.x API used by PROTEST.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the pieces the workspace actually uses: a persistent [`ThreadPool`] of
//! `std::thread` workers ([`ThreadPoolBuilder`] with `num_threads`),
//! [`join`], [`scope`] with panic propagation, and chunked parallel
//! iterators over slices and ranges (`par_iter` / `par_iter_mut` /
//! `into_par_iter` with `map` / `enumerate` / `for_each` / `collect`, see
//! [`prelude`]). `workspace.dependencies` points the `rayon` name here, so
//! the upstream crate can drop in unchanged later.
//!
//! Deviations from upstream, all deliberate:
//!
//! * No work stealing: jobs go through one shared injector queue, and
//!   threads blocked in [`scope`] help drain it (which also makes nested
//!   scopes deadlock-free). Fine for the coarse chunks PROTEST spawns,
//!   wrong granularity for microtasks.
//! * A pool of `num_threads = N` spawns `N − 1` workers; the calling
//!   thread is the N-th executor (it participates while waiting). With
//!   `N ≤ 1` nothing is spawned and every operation degenerates to plain
//!   serial execution on the caller.
//! * [`ParallelIterator::map`] additionally requires `F: Clone` (upstream
//!   shares the closure by reference through its producer machinery; the
//!   shim clones it into each chunk). Closures capturing only shared
//!   references — every use in this workspace — are `Clone` automatically.
//! * Parallel iterators are always "indexed": chunks are contiguous and
//!   `collect::<Vec<_>>()` preserves item order, matching upstream's
//!   behavior for the slice/range iterators implemented here.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

pub mod iter;
pub mod prelude;

/// A queued unit of work. Lifetime-erased: [`scope`] guarantees every job
/// runs before the borrows it captures expire.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between a pool's workers and the threads using it.
struct PoolState {
    /// Shared injector queue (no per-worker deques / stealing).
    queue: Mutex<VecDeque<Job>>,
    /// Signals queued jobs, job completion and shutdown.
    condvar: Condvar,
    /// Logical executor count, *including* the installing caller.
    threads: usize,
    shutdown: AtomicBool,
}

impl PoolState {
    fn push_job(&self, job: Job) {
        self.queue.lock().unwrap().push_back(job);
        self.condvar.notify_all();
    }

    /// Pops one job without blocking.
    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap().pop_front()
    }
}

/// Worker main loop: drain the queue, park when empty, exit on shutdown
/// (only after the queue is empty, so no job is ever dropped unexecuted).
fn worker_loop(state: Arc<PoolState>) {
    CURRENT.with(|c| *c.borrow_mut() = Some(state.clone()));
    loop {
        let job = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = state.condvar.wait(queue).unwrap();
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

thread_local! {
    /// The pool the current thread belongs to (workers) or has installed
    /// (callers inside [`ThreadPool::install`]).
    static CURRENT: RefCell<Option<Arc<PoolState>>> = const { RefCell::new(None) };
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

fn global_pool() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        ThreadPoolBuilder::new()
            .build()
            .expect("failed to spawn global thread pool")
    })
}

/// The pool the current thread should run parallel work on: its own pool
/// (worker threads and `install` callers), else the global one.
fn current_state() -> Arc<PoolState> {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .unwrap_or_else(|| global_pool().state.clone())
    })
}

/// Number of logical threads parallel work is spread over in the current
/// context (1 means everything runs serially on the caller).
pub fn current_num_threads() -> usize {
    current_state().threads
}

/// Error building a [`ThreadPool`].
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: String,
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error: {}", self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] (API subset: `num_threads` only).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default configuration (one thread per available
    /// CPU).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of threads (0 = one per available CPU).
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool, spawning its workers.
    ///
    /// # Errors
    ///
    /// Returns an error if a worker thread cannot be spawned.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.num_threads
        };
        let state = Arc::new(PoolState {
            queue: Mutex::new(VecDeque::new()),
            condvar: Condvar::new(),
            threads,
            shutdown: AtomicBool::new(false),
        });
        // The installing caller is the N-th executor; N ≤ 1 spawns nothing
        // and keeps every operation strictly serial.
        let mut handles = Vec::new();
        for i in 1..threads {
            let worker_state = state.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || worker_loop(worker_state));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Shut down the workers already spawned before
                    // reporting failure — otherwise they'd park on the
                    // condvar forever.
                    state.shutdown.store(true, Ordering::SeqCst);
                    state.condvar.notify_all();
                    for handle in handles {
                        let _ = handle.join();
                    }
                    return Err(ThreadPoolBuildError {
                        message: e.to_string(),
                    });
                }
            }
        }
        Ok(ThreadPool { state, handles })
    }

    /// Builds the pool and installs it as the global one.
    ///
    /// # Errors
    ///
    /// Returns an error if the global pool was already initialized or a
    /// worker cannot be spawned.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let pool = self.build()?;
        GLOBAL.set(pool).map_err(|_| ThreadPoolBuildError {
            message: "global thread pool already initialized".to_string(),
        })
    }
}

/// A persistent pool of worker threads.
pub struct ThreadPool {
    state: Arc<PoolState>,
    handles: Vec<JoinHandle<()>>,
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.state.threads)
            .finish()
    }
}

impl ThreadPool {
    /// The pool's logical thread count (including the installing caller).
    pub fn current_num_threads(&self) -> usize {
        self.state.threads
    }

    /// Runs `op` with this pool as the current one: [`join`], [`scope`]
    /// and the parallel iterators called inside use this pool's workers.
    /// `op` itself runs on the calling thread, which participates in the
    /// work while waiting.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        struct Restore(Option<Arc<PoolState>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let previous = self.0.take();
                CURRENT.with(|c| *c.borrow_mut() = previous);
            }
        }
        let previous = CURRENT.with(|c| c.borrow_mut().replace(self.state.clone()));
        let _restore = Restore(previous);
        op()
    }

    /// [`scope`] on this pool.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R + Send,
        R: Send,
    {
        self.install(|| scope(op))
    }

    /// [`join`] on this pool.
    pub fn join<A, B, RA, RB>(&self, oper_a: A, oper_b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.install(|| join(oper_a, oper_b))
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.condvar.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Book-keeping for one [`scope`] invocation.
struct ScopeState {
    pool: Arc<PoolState>,
    /// Spawned jobs not yet completed.
    pending: AtomicUsize,
    /// First panic payload from a spawned job.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl ScopeState {
    fn store_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Marks one job done and wakes waiters. The queue lock is taken so
    /// the decrement cannot race with a waiter that just checked `pending`
    /// and is about to sleep.
    fn complete_one(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
        let _guard = self.pool.queue.lock().unwrap();
        self.pool.condvar.notify_all();
    }
}

/// A scope for spawning borrowed work; see [`scope`].
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    /// Invariant over `'scope`, as in upstream rayon.
    marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns a job that may borrow anything outliving the scope. The job
    /// runs on the pool (inline when the pool is serial) and is guaranteed
    /// to finish before [`scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let state = self.state.clone();
        state.pending.fetch_add(1, Ordering::SeqCst);
        let run = {
            let state = state.clone();
            move || {
                let scope = Scope {
                    state: state.clone(),
                    marker: PhantomData,
                };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                    state.store_panic(payload);
                }
                state.complete_one();
            }
        };
        if state.pool.threads <= 1 {
            // Serial pool: degenerate to immediate inline execution.
            run();
            return;
        }
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(run);
        // SAFETY: `scope` (the only constructor of `Scope` values handed
        // to user code) does not return until `pending` reaches zero, and
        // `pending` is only decremented after a job has run. Jobs are
        // never dropped unexecuted (workers drain the queue before honoring
        // shutdown; waiters help drain it), so every borrow with lifetime
        // `'scope` inside the job is used strictly before it expires.
        let job: Job = unsafe { std::mem::transmute(job) };
        state.pool.push_job(job);
    }
}

/// Creates a scope in which borrowed work can be [`spawn`](Scope::spawn)ed,
/// waits for all of it, and propagates the first panic (if any). Runs on
/// the current pool (the surrounding [`ThreadPool::install`], the worker's
/// own pool, or the global pool).
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    scope_in(current_state(), op)
}

fn scope_in<'scope, OP, R>(pool: Arc<PoolState>, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let state = Arc::new(ScopeState {
        pool,
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
    });
    let scope = Scope {
        state: state.clone(),
        marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    // Always wait — even when `op` panicked — so spawned jobs never outlive
    // the borrows they capture. While waiting, help run queued jobs (ours
    // or any other scope's): this is what makes nested scopes safe.
    loop {
        if state.pending.load(Ordering::SeqCst) == 0 {
            break;
        }
        if let Some(job) = state.pool.try_pop() {
            job();
            continue;
        }
        let guard = state.pool.queue.lock().unwrap();
        if state.pending.load(Ordering::SeqCst) == 0 || !guard.is_empty() {
            continue;
        }
        drop(state.pool.condvar.wait(guard).unwrap());
    }
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(value) => {
            if let Some(payload) = state.panic.lock().unwrap().take() {
                resume_unwind(payload);
            }
            value
        }
    }
}

/// Runs both closures, potentially in parallel, and returns both results.
/// Panics in either closure propagate after both have been waited for.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = current_state();
    if pool.threads <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    let mut rb = None;
    let rb_slot = &mut rb;
    let ra = scope_in(pool, |s| {
        s.spawn(move |_| *rb_slot = Some(oper_b()));
        oper_a()
    });
    let rb = rb.expect("join: second operand completed without a result");
    (ra, rb)
}
