//! The traits needed to use parallel iterators, mirroring
//! `rayon::prelude`.

pub use crate::iter::{
    FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
    IntoParallelRefMutIterator, ParallelIterator,
};
