//! Chunked parallel iterators over slices and ranges (API subset).
//!
//! Every iterator here is *indexed*: it knows its length, splits into
//! contiguous pieces, and `collect::<Vec<_>>()` preserves item order, so
//! switching a serial `iter()` to `par_iter()` changes neither results nor
//! ordering. Execution fans the items out as at most one contiguous chunk
//! per pool thread inside a [`crate::scope`]; on a serial pool (or for a
//! single-item iterator) everything runs inline on the caller.

use std::ops::Range;

/// A parallel iterator (API subset: `map`, `enumerate`, `for_each`,
/// `collect`, `len`).
///
/// The `pi_*` methods are the shim's internal producer machinery (public
/// so the driver can be generic, hidden because upstream has no such
/// methods — code written against this trait should not call them).
#[allow(clippy::len_without_is_empty)]
pub trait ParallelIterator: Sized + Send {
    /// The item type.
    type Item: Send;

    /// Number of items left.
    #[doc(hidden)]
    fn pi_len(&self) -> usize;

    /// Splits into `[0, index)` and `[index, len)`.
    #[doc(hidden)]
    fn pi_split_at(self, index: usize) -> (Self, Self);

    /// Sequentially feeds every item to `sink`, in order.
    #[doc(hidden)]
    fn pi_drain(self, sink: &mut dyn FnMut(Self::Item));

    /// Maps each item through `f`.
    ///
    /// Unlike upstream, the shim requires `F: Clone` (each chunk gets its
    /// own copy); closures capturing only shared references are `Clone`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send + Clone,
    {
        Map { base: self, f }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Runs `f` on every item, in parallel chunks.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        run_chunks(self, &|chunk| chunk.pi_drain(&mut |item| f(item)));
    }

    /// Collects into a collection (the shim implements `Vec<T>`),
    /// preserving item order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Number of items (every shim iterator is exactly sized).
    fn len(&self) -> usize {
        self.pi_len()
    }
}

/// Conversion into a [`ParallelIterator`], mirroring upstream.
pub trait IntoParallelIterator {
    /// The iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type.
    type Item: Send;
    /// Converts self.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` on `&C` collections, mirroring upstream's blanket impl.
pub trait IntoParallelRefIterator<'data> {
    /// The iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type (a shared reference).
    type Item: Send + 'data;
    /// Borrowing parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoParallelIterator,
{
    type Iter = <&'data C as IntoParallelIterator>::Iter;
    type Item = <&'data C as IntoParallelIterator>::Item;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `par_iter_mut()` on `&mut C` collections, mirroring upstream.
pub trait IntoParallelRefMutIterator<'data> {
    /// The iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type (a mutable reference).
    type Item: Send + 'data;
    /// Borrowing parallel iterator.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoParallelIterator,
{
    type Iter = <&'data mut C as IntoParallelIterator>::Iter;
    type Item = <&'data mut C as IntoParallelIterator>::Item;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Collection types buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection, preserving item order.
    fn from_par_iter<I>(iter: I) -> Self
    where
        I: ParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I>(iter: I) -> Self
    where
        I: ParallelIterator<Item = T>,
    {
        let total = iter.pi_len();
        let chunks = run_chunks(iter, &|chunk| {
            let mut items = Vec::with_capacity(chunk.pi_len());
            chunk.pi_drain(&mut |item| items.push(item));
            items
        });
        let mut out = Vec::with_capacity(total);
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

/// Splits `iter` into at most one contiguous chunk per pool thread, runs
/// `run` on each inside a scope, and returns the per-chunk results in
/// order. Serial pools (and trivial lengths) run inline.
fn run_chunks<I, R, F>(iter: I, run: &F) -> Vec<R>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let threads = crate::current_num_threads();
    let len = iter.pi_len();
    if threads <= 1 || len <= 1 {
        return vec![run(iter)];
    }
    let num_chunks = threads.min(len);
    let mut pieces = Vec::with_capacity(num_chunks);
    let mut rest = iter;
    let mut remaining = len;
    for i in 0..num_chunks {
        let take = remaining.div_ceil(num_chunks - i);
        let (head, tail) = rest.pi_split_at(take);
        pieces.push(head);
        rest = tail;
        remaining -= take;
        if remaining == 0 {
            break;
        }
    }
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(pieces.len()).collect();
    crate::scope(|s| {
        for (piece, slot) in pieces.drain(..).zip(slots.iter_mut()) {
            s.spawn(move |_| *slot = Some(run(piece)));
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("chunk completed without a result"))
        .collect()
}

/// Borrowing iterator over a slice (`par_iter`).
#[derive(Debug)]
pub struct Iter<'data, T: Sync> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for Iter<'data, T> {
    type Item = &'data T;
    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (Iter { slice: a }, Iter { slice: b })
    }
    fn pi_drain(self, sink: &mut dyn FnMut(Self::Item)) {
        for item in self.slice {
            sink(item);
        }
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data [T] {
    type Iter = Iter<'data, T>;
    type Item = &'data T;
    fn into_par_iter(self) -> Self::Iter {
        Iter { slice: self }
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data Vec<T> {
    type Iter = Iter<'data, T>;
    type Item = &'data T;
    fn into_par_iter(self) -> Self::Iter {
        Iter { slice: self }
    }
}

/// Mutably borrowing iterator over a slice (`par_iter_mut`).
#[derive(Debug)]
pub struct IterMut<'data, T: Send> {
    slice: &'data mut [T],
}

impl<'data, T: Send> ParallelIterator for IterMut<'data, T> {
    type Item = &'data mut T;
    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index);
        (IterMut { slice: a }, IterMut { slice: b })
    }
    fn pi_drain(self, sink: &mut dyn FnMut(Self::Item)) {
        for item in self.slice {
            sink(item);
        }
    }
}

impl<'data, T: Send> IntoParallelIterator for &'data mut [T] {
    type Iter = IterMut<'data, T>;
    type Item = &'data mut T;
    fn into_par_iter(self) -> Self::Iter {
        IterMut { slice: self }
    }
}

impl<'data, T: Send> IntoParallelIterator for &'data mut Vec<T> {
    type Iter = IterMut<'data, T>;
    type Item = &'data mut T;
    fn into_par_iter(self) -> Self::Iter {
        IterMut { slice: self }
    }
}

/// Parallel iterator over `Range<usize>`.
#[derive(Debug)]
pub struct RangeIter {
    range: Range<usize>,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    fn pi_len(&self) -> usize {
        self.range.len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let mid = self.range.start + index;
        (
            RangeIter {
                range: self.range.start..mid,
            },
            RangeIter {
                range: mid..self.range.end,
            },
        )
    }
    fn pi_drain(self, sink: &mut dyn FnMut(Self::Item)) {
        for i in self.range {
            sink(i);
        }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;
    fn into_par_iter(self) -> Self::Iter {
        RangeIter { range: self }
    }
}

/// Mapped parallel iterator (see [`ParallelIterator::map`]).
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send + Clone,
{
    type Item = R;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.pi_split_at(index);
        (
            Map {
                base: a,
                f: self.f.clone(),
            },
            Map { base: b, f: self.f },
        )
    }
    fn pi_drain(self, sink: &mut dyn FnMut(Self::Item)) {
        let f = self.f;
        self.base.pi_drain(&mut |item| sink(f(item)));
    }
}

/// Index-pairing parallel iterator (see [`ParallelIterator::enumerate`]).
#[derive(Debug)]
pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

impl<I> ParallelIterator for Enumerate<I>
where
    I: ParallelIterator,
{
    type Item = (usize, I::Item);
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.pi_split_at(index);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + index,
            },
        )
    }
    fn pi_drain(self, sink: &mut dyn FnMut(Self::Item)) {
        let mut index = self.offset;
        self.base.pi_drain(&mut |item| {
            sink((index, item));
            index += 1;
        });
    }
}
