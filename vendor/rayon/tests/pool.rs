//! Unit tests for the vendored rayon-subset shim: pool lifecycle, `join`,
//! `scope` (including panic propagation and nesting), and the chunked
//! parallel iterators. Everything runs against explicit pools so the tests
//! behave the same on single-core and many-core machines.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};

fn pool(threads: usize) -> ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds")
}

#[test]
fn builder_reports_thread_count() {
    for n in [1, 2, 4] {
        assert_eq!(pool(n).current_num_threads(), n);
    }
}

#[test]
fn install_sets_current_num_threads() {
    let p = pool(3);
    assert_eq!(p.install(rayon::current_num_threads), 3);
}

#[test]
fn join_returns_both_results() {
    for n in [1, 4] {
        let p = pool(n);
        let (a, b) = p.join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}

#[test]
fn join_can_borrow_mutably_from_the_stack() {
    let p = pool(4);
    let mut left = 0u64;
    let mut right = 0u64;
    p.join(
        || left = (0..1000u64).sum(),
        || right = (0..100u64).product::<u64>().wrapping_add(7),
    );
    assert_eq!(left, 499_500);
    assert_eq!(right, 7);
}

#[test]
fn scope_runs_every_spawned_job() {
    for n in [1, 2, 4] {
        let p = pool(n);
        let counter = AtomicUsize::new(0);
        p.scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64, "num_threads = {n}");
    }
}

#[test]
fn nested_scopes_complete() {
    for n in [1, 4] {
        let p = pool(n);
        let counter = AtomicUsize::new(0);
        p.scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    rayon::scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|_| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 32, "num_threads = {n}");
    }
}

#[test]
fn scope_spawn_can_respawn_on_the_scope_argument() {
    let p = pool(4);
    let counter = AtomicUsize::new(0);
    p.scope(|s| {
        s.spawn(|s| {
            counter.fetch_add(1, Ordering::SeqCst);
            s.spawn(|_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
    });
    assert_eq!(counter.load(Ordering::SeqCst), 2);
}

#[test]
fn scope_propagates_spawned_panic_after_waiting() {
    for n in [1, 4] {
        let p = pool(n);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            p.scope(|s| {
                s.spawn(|_| panic!("boom in a spawned job"));
                for _ in 0..8 {
                    s.spawn(|_| {
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        let payload = result.expect_err("scope must rethrow the spawned panic");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(message.contains("boom"), "unexpected payload: {message}");
        // The panic is only rethrown after every sibling job has run.
        assert_eq!(finished.load(Ordering::SeqCst), 8, "num_threads = {n}");
    }
}

#[test]
fn pool_survives_a_panicked_scope() {
    let p = pool(2);
    let result = catch_unwind(AssertUnwindSafe(|| {
        p.scope(|s| s.spawn(|_| panic!("first use panics")));
    }));
    assert!(result.is_err());
    // The workers must still be alive and accept new work.
    let (a, b) = p.join(|| 1, || 2);
    assert_eq!((a, b), (1, 2));
}

#[test]
fn par_iter_collect_preserves_order() {
    let input: Vec<u64> = (0..1000).collect();
    for n in [1, 2, 4, 7] {
        let p = pool(n);
        let out: Vec<u64> = p.install(|| input.par_iter().map(|&x| x * x).collect());
        let want: Vec<u64> = input.iter().map(|&x| x * x).collect();
        assert_eq!(out, want, "num_threads = {n}");
    }
}

#[test]
fn par_iter_enumerate_indices_are_global() {
    let input: Vec<u32> = (0..257).collect();
    let p = pool(4);
    let out: Vec<(usize, u32)> = p.install(|| input.par_iter().map(|&x| x).enumerate().collect());
    for (i, &(idx, val)) in out.iter().enumerate() {
        assert_eq!(idx, i);
        assert_eq!(val as usize, i);
    }
}

#[test]
fn range_into_par_iter_matches_serial() {
    let p = pool(3);
    let out: Vec<usize> = p.install(|| (10..200).into_par_iter().map(|i| i * 3).collect());
    let want: Vec<usize> = (10..200).map(|i| i * 3).collect();
    assert_eq!(out, want);
}

#[test]
fn par_iter_mut_touches_every_element_once() {
    for n in [1, 4] {
        let p = pool(n);
        let mut data: Vec<usize> = vec![0; 503];
        p.install(|| {
            data.par_iter_mut()
                .enumerate()
                .for_each(|(i, slot)| *slot += i + 1)
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i + 1, "num_threads = {n}, element {i}");
        }
    }
}

#[test]
fn for_each_sees_every_item() {
    let p = pool(4);
    let seen = Mutex::new(Vec::new());
    p.install(|| {
        (0..100usize)
            .into_par_iter()
            .for_each(|i| seen.lock().unwrap().push(i))
    });
    let mut got = seen.into_inner().unwrap();
    got.sort_unstable();
    let want: Vec<usize> = (0..100).collect();
    assert_eq!(got, want);
}

#[test]
fn num_threads_one_degenerates_to_serial_inline_execution() {
    // On a serial pool nothing is spawned: every job runs inline on the
    // calling thread, so thread-identity and ordering are deterministic.
    let p = pool(1);
    let caller = std::thread::current().id();
    let order = Mutex::new(Vec::new());
    let order_ref = &order;
    p.scope(|s| {
        for i in 0..8 {
            s.spawn(move |_| {
                assert_eq!(std::thread::current().id(), caller);
                order_ref.lock().unwrap().push(i);
            });
        }
    });
    assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    let out: Vec<usize> = p.install(|| (0..32).into_par_iter().map(|i| i + 1).collect());
    assert_eq!(out, (1..33).collect::<Vec<_>>());
}

#[test]
fn empty_and_single_item_iterators() {
    let p = pool(4);
    let empty: Vec<u32> = p.install(|| Vec::<u32>::new().par_iter().map(|&x| x).collect());
    assert!(empty.is_empty());
    let one: Vec<u32> = p.install(|| [41u32].par_iter().map(|&x| x + 1).collect());
    assert_eq!(one, vec![42]);
}

#[test]
fn dropping_a_pool_joins_its_workers() {
    // Just exercising Drop: spawn real work, drop, and build another pool.
    let p = pool(4);
    let counter = AtomicUsize::new(0);
    p.scope(|s| {
        for _ in 0..16 {
            s.spawn(|_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
    });
    drop(p);
    assert_eq!(counter.load(Ordering::SeqCst), 16);
    let p2 = pool(2);
    assert_eq!(p2.join(|| 1, || 1), (1, 1));
}
