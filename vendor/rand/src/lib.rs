//! Offline shim for the subset of the `rand` 0.8 API that PROTEST uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a tiny, dependency-free implementation: a
//! xoshiro256** generator behind [`rngs::StdRng`], the [`Rng`] /
//! [`SeedableRng`] traits, uniform range sampling for the integer and
//! float types the workspace needs, and [`seq::SliceRandom::shuffle`].
//! Determinism for a given seed is all the test-suite relies on; the
//! streams intentionally do not match upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable uniformly over their whole domain (the `Standard`
/// distribution in upstream `rand`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled to produce a uniform value of type `T`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, bound)` via Lemire widening-multiply rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let wide = (rng.next_u64() as u128) * (bound as u128);
        if wide as u64 >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;

    fn from_entropy() -> Self {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded through SplitMix64 — deterministic, fast, and
    /// statistically strong enough for the Monte-Carlo convergence tests.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers from `rand::seq` — only what the workspace uses.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2..=3usize);
            assert!((2..=3).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_float_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }
}
